//! Parser for the λπ⩽ surface syntax: types (Def. 3.1) and terms (Fig. 2).
//!
//! The concrete syntax follows the paper's notation, with ASCII alternatives
//! (see [`crate::lexer`]). Examples:
//!
//! ```text
//! // Types
//! Pi(self: cio[str]) Pi(pongc: co[co[str]])
//!   o[pongc, self, Pi() i[self, Pi(reply: str) nil]]
//!
//! rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]
//!                              | o[aud, pay, Pi() o[client, unit, Pi() t]] )]
//!
//! // Terms
//! let c : cio[int] = chan[int]() in
//!   send(c, 42, fun _ : unit . end) || recv(c, fun v : int . end)
//! ```
//!
//! The parser supports *named type definitions* through a
//! [`Definitions`] table: an identifier that is neither a bound recursion
//! variable nor a definition parses as a term variable used as a type
//! (`Type::Var`). Type application by juxtaposition (`Tping y z`, Ex. 3.3) is
//! resolved eagerly via [`Type::apply`].

use std::collections::BTreeMap;
use std::fmt;

use crate::lexer::{tokenize, LexError, Token};
use crate::name::Name;
use crate::term::{BinOp, Term};
use crate::ty::Type;

/// Named type definitions available while parsing (type aliases, e.g.
/// `Tping`, `Tpong` from Ex. 3.3).
pub type Definitions = BTreeMap<String, Type>;

/// A parse error with a rough token position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Index of the offending token.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            position: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a λπ⩽ type from its surface syntax (no named definitions in scope).
pub fn parse_type(input: &str) -> Result<Type, ParseError> {
    parse_type_with(input, &Definitions::new())
}

/// Parses a λπ⩽ type with the given named definitions in scope.
pub fn parse_type_with(input: &str, defs: &Definitions) -> Result<Type, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        defs,
        rec_vars: Vec::new(),
        depth: 0,
    };
    let ty = p.ty()?;
    p.expect(Token::Eof)?;
    Ok(ty)
}

/// Parses a λπ⩽ term from its surface syntax.
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    parse_term_with(input, &Definitions::new())
}

/// Parses a λπ⩽ term with the given named type definitions in scope (used for
/// the type annotations on `λ`, `let` and `chan`).
pub fn parse_term_with(input: &str, defs: &Definitions) -> Result<Term, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        defs,
        rec_vars: Vec::new(),
        depth: 0,
    };
    let t = p.term()?;
    p.expect(Token::Eof)?;
    Ok(t)
}

/// How deeply types/terms may nest before the parser refuses the input.
///
/// Every nesting construct recurses through [`Parser::ty`] or
/// [`Parser::term`], so this bounds the parser's stack: hostile inputs like
/// `p[p[p[…` (the spec parser now reads untrusted bytes from `effpi-serve`)
/// must come back as a [`ParseError`], not as a stack overflow. Real
/// specifications nest a handful of levels; 256 is far beyond any of them
/// yet comfortably inside even a 2 MiB test-thread stack.
const MAX_NESTING: usize = 256;

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    defs: &'a Definitions,
    rec_vars: Vec<Name>,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Token) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            position: self.pos,
            message,
        }
    }

    /// Guards one level of recursion (see [`MAX_NESTING`]). Placed on the
    /// *atom* parsers because every recursion cycle of the grammar passes
    /// through an atom (bracketed forms, `Pi`/`rec` bodies, `!`-chains,
    /// lambda bodies alike); callers pair it with a `depth -= 1` on the way
    /// out.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            Err(self.error(format!("input nests deeper than {MAX_NESTING} levels")))
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn ty(&mut self) -> Result<Type, ParseError> {
        // Union type: T (| T)*
        let first = self.ty_app()?;
        let mut members = vec![first];
        while *self.peek() == Token::Or {
            self.advance();
            members.push(self.ty_app()?);
        }
        Ok(Type::union_all(members))
    }

    /// Type application by juxtaposition: `T S1 S2 ...` (Ex. 3.3's `Tping y z`).
    fn ty_app(&mut self) -> Result<Type, ParseError> {
        let mut head = self.ty_atom()?;
        while self.type_atom_starts_here() {
            let arg = self.ty_atom()?;
            head = head.apply(&arg).ok_or_else(|| {
                self.error(format!(
                    "cannot apply the non-function type {head} to {arg}"
                ))
            })?;
        }
        Ok(head)
    }

    fn type_atom_starts_here(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => {
                // Keywords that may follow a type in a larger context must not
                // be mistaken for application arguments.
                !matches!(
                    s.as_str(),
                    "in" | "then" | "else" | "rec" // handled explicitly
                )
            }
            Token::LParen | Token::Top | Token::Bottom | Token::Mu => true,
            _ => false,
        }
    }

    fn ty_atom(&mut self) -> Result<Type, ParseError> {
        self.enter()?;
        let ty = self.ty_atom_unguarded();
        self.depth -= 1;
        ty
    }

    fn ty_atom_unguarded(&mut self) -> Result<Type, ParseError> {
        match self.advance() {
            Token::Top => Ok(Type::Top),
            Token::Bottom => Ok(Type::Bottom),
            Token::Mu => self.ty_rec(),
            Token::LParen => {
                if *self.peek() == Token::RParen {
                    self.advance();
                    return Ok(Type::Unit);
                }
                let t = self.ty()?;
                self.expect(Token::RParen)?;
                Ok(t)
            }
            Token::Ident(name) => match name.as_str() {
                "bool" => Ok(Type::Bool),
                "int" => Ok(Type::Int),
                "str" => Ok(Type::Str),
                "unit" => Ok(Type::Unit),
                "Top" => Ok(Type::Top),
                "Bot" | "Bottom" => Ok(Type::Bottom),
                "proc" => Ok(Type::Proc),
                "nil" => Ok(Type::Nil),
                "cio" => Ok(Type::chan_io(self.bracketed_ty()?)),
                "ci" => Ok(Type::chan_in(self.bracketed_ty()?)),
                "co" => Ok(Type::chan_out(self.bracketed_ty()?)),
                "o" if *self.peek() == Token::LBracket => {
                    let (s, t, u) = self.bracketed_ty3()?;
                    Ok(Type::out(s, t, u))
                }
                "i" if *self.peek() == Token::LBracket => {
                    let (s, t) = self.bracketed_ty2()?;
                    Ok(Type::inp(s, t))
                }
                "p" if *self.peek() == Token::LBracket => {
                    let (s, t) = self.bracketed_ty2()?;
                    Ok(Type::par(s, t))
                }
                "Pi" => self.ty_pi(),
                "rec" => self.ty_rec(),
                other => {
                    let n = Name::new(other);
                    if self.rec_vars.contains(&n) {
                        Ok(Type::RecVar(n))
                    } else if let Some(def) = self.defs.get(other) {
                        Ok(def.clone())
                    } else {
                        Ok(Type::Var(n))
                    }
                }
            },
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    fn ty_pi(&mut self) -> Result<Type, ParseError> {
        self.expect(Token::LParen)?;
        if *self.peek() == Token::RParen {
            // Π()T — a process thunk.
            self.advance();
            let body = self.ty_app()?;
            return Ok(Type::thunk(body));
        }
        let binder = self.expect_ident()?;
        self.expect(Token::Colon)?;
        let dom = self.ty()?;
        self.expect(Token::RParen)?;
        let body = self.ty()?;
        Ok(Type::pi(binder, dom, body))
    }

    fn ty_rec(&mut self) -> Result<Type, ParseError> {
        let var = self.expect_ident()?;
        self.expect(Token::Dot)?;
        self.rec_vars.push(Name::new(&var));
        let body = self.ty()?;
        self.rec_vars.pop();
        Ok(Type::rec(var, body))
    }

    fn bracketed_ty(&mut self) -> Result<Type, ParseError> {
        self.expect(Token::LBracket)?;
        let t = self.ty()?;
        self.expect(Token::RBracket)?;
        Ok(t)
    }

    fn bracketed_ty2(&mut self) -> Result<(Type, Type), ParseError> {
        self.expect(Token::LBracket)?;
        let a = self.ty()?;
        self.expect(Token::Comma)?;
        let b = self.ty()?;
        self.expect(Token::RBracket)?;
        Ok((a, b))
    }

    fn bracketed_ty3(&mut self) -> Result<(Type, Type, Type), ParseError> {
        self.expect(Token::LBracket)?;
        let a = self.ty()?;
        self.expect(Token::Comma)?;
        let b = self.ty()?;
        self.expect(Token::Comma)?;
        let c = self.ty()?;
        self.expect(Token::RBracket)?;
        Ok((a, b, c))
    }

    // ------------------------------------------------------------------
    // Terms
    // ------------------------------------------------------------------

    fn term(&mut self) -> Result<Term, ParseError> {
        // Parallel composition binds weakest.
        let first = self.term_cmp()?;
        let mut members = vec![first];
        while *self.peek() == Token::ParBar {
            self.advance();
            members.push(self.term_cmp()?);
        }
        if members.len() == 1 {
            Ok(members.pop().expect("one member"))
        } else {
            Ok(Term::par_all(members))
        }
    }

    fn term_cmp(&mut self) -> Result<Term, ParseError> {
        let left = self.term_add()?;
        match self.peek() {
            Token::Gt => {
                self.advance();
                let right = self.term_add()?;
                Ok(Term::binop(BinOp::Gt, left, right))
            }
            Token::EqEq => {
                self.advance();
                let right = self.term_add()?;
                Ok(Term::binop(BinOp::Eq, left, right))
            }
            _ => Ok(left),
        }
    }

    fn term_add(&mut self) -> Result<Term, ParseError> {
        let mut left = self.term_app()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.advance();
                    let right = self.term_app()?;
                    left = Term::binop(BinOp::Add, left, right);
                }
                Token::Minus => {
                    self.advance();
                    let right = self.term_app()?;
                    left = Term::binop(BinOp::Sub, left, right);
                }
                _ => return Ok(left),
            }
        }
    }

    fn term_app(&mut self) -> Result<Term, ParseError> {
        let mut head = self.term_atom()?;
        while self.term_atom_starts_here() {
            let arg = self.term_atom()?;
            head = Term::app(head, arg);
        }
        Ok(head)
    }

    fn term_atom_starts_here(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => !matches!(s.as_str(), "in" | "then" | "else"),
            Token::Int(_) | Token::Str(_) | Token::LParen | Token::Lambda | Token::Not => true,
            _ => false,
        }
    }

    fn term_atom(&mut self) -> Result<Term, ParseError> {
        self.enter()?;
        let term = self.term_atom_unguarded();
        self.depth -= 1;
        term
    }

    fn term_atom_unguarded(&mut self) -> Result<Term, ParseError> {
        match self.advance() {
            Token::Int(i) => Ok(Term::int(i)),
            Token::Str(s) => Ok(Term::str(s)),
            Token::Not => Ok(Term::not(self.term_atom()?)),
            Token::Lambda => self.term_lambda(),
            Token::LParen => {
                if *self.peek() == Token::RParen {
                    self.advance();
                    return Ok(Term::unit());
                }
                let t = self.term()?;
                self.expect(Token::RParen)?;
                Ok(t)
            }
            Token::Ident(name) => match name.as_str() {
                "true" => Ok(Term::bool(true)),
                "false" => Ok(Term::bool(false)),
                "end" => Ok(Term::End),
                "err" => Ok(Term::err()),
                "not" => Ok(Term::not(self.term_atom()?)),
                "fun" => self.term_lambda(),
                "send" => {
                    self.expect(Token::LParen)?;
                    let chan = self.term()?;
                    self.expect(Token::Comma)?;
                    let payload = self.term()?;
                    self.expect(Token::Comma)?;
                    let cont = self.term()?;
                    self.expect(Token::RParen)?;
                    Ok(Term::send(chan, payload, cont))
                }
                "recv" => {
                    self.expect(Token::LParen)?;
                    let chan = self.term()?;
                    self.expect(Token::Comma)?;
                    let cont = self.term()?;
                    self.expect(Token::RParen)?;
                    Ok(Term::recv(chan, cont))
                }
                "chan" => {
                    let ty = self.bracketed_ty()?;
                    self.expect(Token::LParen)?;
                    self.expect(Token::RParen)?;
                    Ok(Term::chan(ty))
                }
                "let" => {
                    let binder = self.expect_ident()?;
                    self.expect(Token::Colon)?;
                    let annot = self.ty()?;
                    self.expect(Token::Equals)?;
                    let bound = self.term()?;
                    match self.advance() {
                        Token::Ident(kw) if kw == "in" => {}
                        other => return Err(self.error(format!("expected 'in', found {other}"))),
                    }
                    let body = self.term()?;
                    Ok(Term::let_(binder, annot, bound, body))
                }
                "if" => {
                    let cond = self.term()?;
                    match self.advance() {
                        Token::Ident(kw) if kw == "then" => {}
                        other => return Err(self.error(format!("expected 'then', found {other}"))),
                    }
                    let then_branch = self.term()?;
                    match self.advance() {
                        Token::Ident(kw) if kw == "else" => {}
                        other => return Err(self.error(format!("expected 'else', found {other}"))),
                    }
                    let else_branch = self.term()?;
                    Ok(Term::ite(cond, then_branch, else_branch))
                }
                other => Ok(Term::var(other)),
            },
            other => Err(self.error(format!("expected a term, found {other}"))),
        }
    }

    fn term_lambda(&mut self) -> Result<Term, ParseError> {
        let binder = self.expect_ident()?;
        self.expect(Token::Colon)?;
        let dom = self.ty()?;
        self.expect(Token::Dot)?;
        let body = self.term_cmp()?;
        Ok(Term::lam(binder, dom, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn parses_base_and_channel_types() {
        assert_eq!(parse_type("bool").unwrap(), Type::Bool);
        assert_eq!(parse_type("cio[int]").unwrap(), Type::chan_io(Type::Int));
        assert_eq!(
            parse_type("co[co[str]]").unwrap(),
            Type::chan_out(Type::chan_out(Type::Str))
        );
        assert_eq!(parse_type("()").unwrap(), Type::Unit);
        assert_eq!(
            parse_type("int | bool").unwrap(),
            Type::union(Type::Int, Type::Bool)
        );
    }

    #[test]
    fn parses_process_types_with_dependencies() {
        let t = parse_type("Pi(x: cio[int]) o[x, int, Pi() nil]").unwrap();
        assert_eq!(
            t,
            Type::pi(
                "x",
                Type::chan_io(Type::Int),
                Type::out(Type::var("x"), Type::Int, Type::thunk(Type::Nil))
            )
        );
        let i = parse_type("i[self, Pi(reply: str) nil]").unwrap();
        assert_eq!(
            i,
            Type::inp(Type::var("self"), Type::pi("reply", Type::Str, Type::Nil))
        );
    }

    #[test]
    fn parses_recursive_types_with_rec_variables() {
        let t = parse_type("rec t . i[x, Pi(v: int) t]").unwrap();
        assert_eq!(
            t,
            Type::rec(
                "t",
                Type::inp(Type::var("x"), Type::pi("v", Type::Int, Type::rec_var("t")))
            )
        );
        // Outside the µ, the same identifier is a term variable.
        assert_eq!(parse_type("t").unwrap(), Type::var("t"));
    }

    #[test]
    fn the_pretty_printer_output_parses_back_for_the_paper_types() {
        for ty in [
            examples::tping_type(),
            examples::tpong_type(),
            examples::tpp_type(),
            examples::tm_type(),
            examples::tpayment_type(),
        ] {
            let printed = ty.to_string();
            let reparsed =
                parse_type(&printed).unwrap_or_else(|e| panic!("could not reparse {printed}: {e}"));
            assert_eq!(reparsed, ty, "round-trip failed for {printed}");
        }
    }

    #[test]
    fn named_definitions_and_application_express_example_3_3() {
        let mut defs = Definitions::new();
        defs.insert("Tping".to_string(), examples::tping_type());
        defs.insert("Tpong".to_string(), examples::tpong_type());
        let t = parse_type_with("p[Tping y z, Tpong z]", &defs).unwrap();
        let expected = Type::par(
            examples::tping_type()
                .apply_all(&[Type::var("y"), Type::var("z")])
                .unwrap(),
            examples::tpong_type().apply(&Type::var("z")).unwrap(),
        );
        assert_eq!(t, expected);
        // Applying a non-function type is an error.
        assert!(parse_type("int bool").is_err());
    }

    #[test]
    fn parses_the_ping_pong_terms() {
        let pinger = parse_term(
            "fun self: cio[str]. fun pongc: co[co[str]]. \
             send(pongc, self, fun _: (). recv(self, fun reply: str. end))",
        )
        .unwrap();
        assert_eq!(pinger, examples::pinger_term());

        let system = parse_term(
            "let c : cio[int] = chan[int]() in \
             send(c, 42, fun _: (). end) || recv(c, fun v: int. end)",
        )
        .unwrap();
        let result = crate::Reducer::new().eval(&system, 100);
        assert!(result.is_safe());
        assert_eq!(result.term, Term::End);
    }

    #[test]
    fn parses_conditionals_and_arithmetic() {
        let t = parse_term("if x > 42000 then send(c, 1 + 2, fun _: (). end) else end").unwrap();
        match t {
            Term::If(cond, then_b, else_b) => {
                assert!(matches!(*cond, Term::BinOp(BinOp::Gt, _, _)));
                assert!(then_b.is_process());
                assert_eq!(*else_b, Term::End);
            }
            other => panic!("unexpected parse {other}"),
        }
    }

    #[test]
    fn reports_helpful_errors() {
        assert!(parse_type("o[x, int")
            .unwrap_err()
            .to_string()
            .contains("expected"));
        assert!(parse_term("let x = 3 in x").is_err()); // missing type annotation
        assert!(parse_term("send(c, 1)").is_err()); // missing continuation
        assert!(parse_type("cio[").is_err());
    }
}

//! # lambdapi — the λπ⩽ calculus
//!
//! This crate implements the syntax and the call-by-value operational
//! semantics of **λπ⩽**, the concurrent functional calculus at the basis of
//! *"Verifying Message-Passing Programs with Dependent Behavioural Types"*
//! (Scalas, Yoshida, Benussi — PLDI 2019):
//!
//! * [`Term`] / [`Value`] — the term syntax of Fig. 2, with processes
//!   (`end`, `send`, `recv`, `||`) folded in, plus the routine extensions
//!   (integers, strings, a few primitive operators) used by the paper's
//!   examples;
//! * [`Type`] — the type syntax of Def. 3.1 (union types, dependent function
//!   types, equi-recursive types, channel types, process types) together with
//!   purely syntactic operations: substitution `T{S/x}`, unfolding, the
//!   structural congruence ≡, guardedness and contractivity checks;
//! * [`Reducer`] — the reduction semantics of Fig. 3, including the
//!   concurrency rules ([R-chan()], [R-Comm]) and the error rules;
//! * [`examples`] — the paper's running examples (ping-pong, mobile code,
//!   payment-with-audit) as reusable terms and types.
//!
//! The static semantics (type validity, subtyping, the typing judgement) lives
//! in the companion `dbt-types` crate; the labelled semantics used for
//! verification lives in `lts`; the µ-calculus checker in `mucalc`.
//!
//! ## Quick example
//!
//! ```
//! use lambdapi::{Reducer, Term, Type};
//!
//! // let c = chan() in send(c, 42, λ_.end) || recv(c, λv.end)
//! let system = Term::let_(
//!     "c",
//!     Type::chan_io(Type::Int),
//!     Term::chan(Type::Int),
//!     Term::par(
//!         Term::send(Term::var("c"), Term::int(42), Term::thunk(Term::End)),
//!         Term::recv(Term::var("c"), Term::lam("v", Type::Int, Term::End)),
//!     ),
//! );
//! let result = Reducer::new().eval(&system, 100);
//! assert!(result.is_safe());
//! assert_eq!(result.term, Term::End);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod name;
mod reduce;
mod subst;
mod term;
mod ty;

pub mod examples;
pub mod intern;
pub mod lexer;
pub mod parser;

pub use intern::{TermId, TermRef, TyRef, TypeId};
pub use name::{ChanId, Name, NameGen};
pub use parser::{
    parse_term, parse_term_with, parse_type, parse_type_with, Definitions, ParseError,
};
pub use reduce::{
    par_components, rebuild_par, replace_var_in_eval_position, BaseRule, EvalResult, Reducer,
};
pub use term::{BinOp, Term, Value};
pub use ty::Type;

//! Lexer for the λπ⩽ surface syntax.
//!
//! The surface syntax accepts both the paper's unicode notation (`Π`, `µ`,
//! `∨`, `⊤`, `⊥`, `λ`, `¬`) and plain-ASCII spellings (`Pi`, `rec`, `|`,
//! `Top`, `Bot`, `fun`, `not`), so protocol files are easy to type while the
//! pretty-printer's output parses back.

use std::fmt;

/// A lexical token of the λπ⩽ surface syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// An identifier (variable, type name, keyword candidate).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (without the quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// `∨` or `\/` or `|` (union)
    Or,
    /// `||` (parallel composition of terms)
    ParBar,
    /// `Π` / `Pi` handled as identifiers; `->` arrow used in sugar
    Arrow,
    /// `>` (greater-than)
    Gt,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `==`
    EqEq,
    /// `⊤`
    Top,
    /// `⊥`
    Bottom,
    /// `λ`
    Lambda,
    /// `µ`
    Mu,
    /// `¬`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Equals => write!(f, "="),
            Token::Or => write!(f, "∨"),
            Token::ParBar => write!(f, "||"),
            Token::Arrow => write!(f, "->"),
            Token::Gt => write!(f, ">"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::EqEq => write!(f, "=="),
            Token::Top => write!(f, "⊤"),
            Token::Bottom => write!(f, "⊥"),
            Token::Lambda => write!(f, "λ"),
            Token::Mu => write!(f, "µ"),
            Token::Not => write!(f, "¬"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing error: an unexpected character or an unterminated string literal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises the input. Comments run from `//` or `#` to the end of the line.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '∨' => {
                tokens.push(Token::Or);
                i += 1;
            }
            '⊤' => {
                tokens.push(Token::Top);
                i += 1;
            }
            '⊥' => {
                tokens.push(Token::Bottom);
                i += 1;
            }
            'λ' => {
                tokens.push(Token::Lambda);
                i += 1;
            }
            'µ' | 'μ' => {
                tokens.push(Token::Mu);
                i += 1;
            }
            '¬' => {
                tokens.push(Token::Not);
                i += 1;
            }
            'Π' => {
                tokens.push(Token::Ident("Pi".to_string()));
                i += 1;
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    tokens.push(Token::ParBar);
                    i += 2;
                } else {
                    tokens.push(Token::Or);
                    i += 1;
                }
            }
            '\\' if chars.get(i + 1) == Some(&'/') => {
                tokens.push(Token::Or);
                i += 2;
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else if chars
                    .get(i + 1)
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    // negative integer literal
                    let start = i;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    tokens.push(Token::Int(text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("invalid integer literal {text}"),
                    })?));
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '>' => {
                tokens.push(Token::Gt);
                i += 1;
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::EqEq);
                    i += 2;
                } else {
                    tokens.push(Token::Equals);
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') if chars.get(i + 1) == Some(&'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::Int(text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("invalid integer literal {text}"),
                })?));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '\'')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::Ident(text));
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_type_syntax_in_both_notations() {
        let unicode = tokenize("Π(x:cio[int]) o[x, int, Π()nil] ∨ ⊥").unwrap();
        let ascii = tokenize("Pi(x:cio[int]) o[x, int, Pi()nil] \\/ Bot").unwrap();
        assert!(unicode.contains(&Token::Ident("Pi".into())));
        assert!(unicode.contains(&Token::Or));
        assert!(ascii.contains(&Token::Or));
        assert_eq!(unicode.last(), Some(&Token::Eof));
    }

    #[test]
    fn lexes_terms_with_literals_and_operators() {
        let toks = tokenize(r#"send(c, "Hi!", λ_.end) || recv(c, λx:str. end)"#).unwrap();
        assert!(toks.contains(&Token::Str("Hi!".into())));
        assert!(toks.contains(&Token::ParBar));
        assert!(toks.contains(&Token::Lambda));
        let nums = tokenize("if x > 42000 then 1 else -3").unwrap();
        assert!(nums.contains(&Token::Int(42000)));
        assert!(nums.contains(&Token::Int(-3)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("int // trailing comment\n# full line\nbool").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("int".into()),
                Token::Ident("bool".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_report_the_offset() {
        let err = tokenize("int $ bool").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("unexpected"));
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn recursion_variables_with_primes_are_identifiers() {
        let toks = tokenize("µt.i[x, Pi(v:int) t']").unwrap();
        assert!(toks.contains(&Token::Ident("t'".into())));
        assert!(toks.contains(&Token::Mu));
    }
}

//! Hash-consed interning of [`Type`]s and [`Term`]s: the allocation-free
//! backbone of the verification hot path.
//!
//! The exploration engine (`lts::explore`) treats every state as a λπ⩽
//! [`Type`] (Fig. 6 pipeline) or an open [`Term`] (Fig. 5 pipeline); before
//! interning existed, every seen-set lookup re-hashed and re-compared whole
//! trees, and every successor re-ran full-tree traversals. This module
//! provides:
//!
//! * [`TyRef`] — a handle to an interned type: structurally deduplicated on
//!   construction, so two structurally equal types **always** share one
//!   [`TypeId`], and `Eq`/`Hash` are O(1) integer operations;
//! * [`TermRef`] / [`TermId`] — the same contract for terms, with memoized
//!   [`TermRef::par_components`] (the ≡-flattening every `||` expansion
//!   performs) and [`TermRef::free_vars`] (the [R-letgc] / candidate-probe
//!   query) keyed by id;
//! * a process-wide interner with **sharded** tables (one mutex per shard),
//!   so concurrent exploration workers intern without a global lock;
//! * memoized [`TyRef::normalized`] and [`TyRef::canonical`], keyed by id:
//!   each distinct (sub)tree is normalised exactly once per process, after
//!   which both operations are hash lookups.
//!
//! ## Determinism
//!
//! [`TypeId`]s are assigned in first-intern order, which is **racy** under
//! concurrent exploration — two runs of the same workload may assign
//! different ids to the same type. Nothing user-visible may therefore depend
//! on id *values* or id *order*:
//!
//! * `Eq`/`Hash` are sound (equal structure ⇔ equal id, per process);
//! * `TyRef` deliberately does **not** implement `Ord`, and its `Debug`
//!   delegates to the underlying [`Type`], so sorting by either stays
//!   structural. Consumers that need an order must compare
//!   [`TyRef::as_type`] (see `TypeLts::successors`).
//!
//! The memo tables are keyed by id but their *values* are pure functions of
//! the type's structure, so memoisation can never leak allocation order into
//! a result.
//!
//! ## Memory
//!
//! The interner is append-only and process-wide: it retains every distinct
//! type ever interned (a long-running `effpi-serve` daemon can watch its
//! growth through [`stats`], which the daemon's `stats` request exposes).
//! Alongside the structural tables it keeps an id-indexed reverse table
//! ([`TyRef::from_id`] / [`TermRef::from_id`]), which is what lets id-keyed
//! consumers — the exploration engine's bitmap seen-sets and disk-spilled
//! frontiers — store bare 32-bit indices instead of references and rehydrate
//! them on demand. Per-run arenas that can be dropped with their request are
//! a known follow-up (see ROADMAP).

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::name::Name;
use crate::term::Term;
use crate::ty::Type;

/// Number of shards in each interner table: comfortably above any plausible
/// worker count, so concurrent registrations of distinct types rarely collide
/// on a lock. Must be a power of two.
const SHARDS: usize = 64;

/// log2 of [`SHARDS`] — the shift that turns an id into its slab slot in the
/// id-indexed reverse tables (`shard = id & (SHARDS - 1)`,
/// `slot = id >> SHARD_BITS`).
const SHARD_BITS: u32 = SHARDS.trailing_zeros();

/// The identity of an interned type: a dense 32-bit index.
///
/// Two `TypeId`s are equal **iff** the types they name are structurally equal
/// (within one process). The numeric value is an allocation-order artifact —
/// never persist it, never order by it where determinism matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TypeId(u32);

impl TypeId {
    /// The raw index (for diagnostics and for sharding id-keyed side tables).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reassembles an id from its raw index (the inverse of
    /// [`TypeId::index`], for id-keyed side tables that store raw `u32`s —
    /// e.g. the exploration engine's spill files). The id is only meaningful
    /// within the process that produced the index; resolving one that was
    /// never allocated yields `None` from [`TyRef::from_id`].
    pub fn from_index(index: u32) -> TypeId {
        TypeId(index)
    }
}

/// A handle to an interned [`Type`]: cheap to clone, O(1) `Eq`/`Hash` (by
/// [`TypeId`]), dereferences to the underlying type.
///
/// Obtain one with [`TyRef::intern`] (borrowed input) or [`TyRef::new`]
/// (owned input, avoids one clone on first intern).
#[derive(Clone)]
pub struct TyRef {
    id: TypeId,
    ty: Arc<Type>,
}

impl TyRef {
    /// Interns a borrowed type, cloning it only if it was never seen before.
    pub fn intern(ty: &Type) -> TyRef {
        interner().intern_arc_or(ty, None)
    }

    /// Interns an owned type (no clone on first intern).
    pub fn new(ty: Type) -> TyRef {
        let arc = Arc::new(ty);
        interner().intern_arc_or(&arc.clone(), Some(arc))
    }

    /// Interns a type already behind an [`Arc`], sharing the allocation.
    pub fn from_arc(ty: Arc<Type>) -> TyRef {
        interner().intern_arc_or(&ty.clone(), Some(ty))
    }

    /// The interned type's identity.
    pub fn id(&self) -> TypeId {
        self.id
    }

    /// The underlying type.
    pub fn as_type(&self) -> &Type {
        &self.ty
    }

    /// The underlying shared allocation (lets callers build parent nodes
    /// without re-cloning the subtree).
    pub fn as_arc(&self) -> &Arc<Type> {
        &self.ty
    }

    /// The normalised form of this type (see [`Type::normalize`]), memoized:
    /// the first call per distinct type computes, every later call — from any
    /// thread — is a hash lookup. Subtrees are normalised through the same
    /// memo, so shared components of parallel compositions are normalised
    /// once, not once per enclosing state.
    pub fn normalized(&self) -> TyRef {
        interner().normalized(self)
    }

    /// `true` when this type is already in normal form (which the interner
    /// knows after the first normalisation without re-walking the tree).
    pub fn is_normal(&self) -> bool {
        self.normalized().id == self.id
    }

    /// The canonical LTS-state form: [`Type::normalize`] followed by
    /// [`Type::unfold_head`] with the given unfold budget. Memoized per
    /// `(type, max_unfold)`; types that are already canonical hit the memo
    /// without any tree walk.
    pub fn canonical(&self, max_unfold: usize) -> TyRef {
        interner().canonical(self, max_unfold)
    }

    /// Resolves an id back to its interned type — the inverse of
    /// [`TyRef::id`], in O(1) (one shard lock plus an indexed load).
    ///
    /// This is what lets id-keyed structures shed the reference itself: the
    /// exploration engine's disk-spilled frontiers persist bare `u32` indices
    /// and rehydrate them through this table when the segment streams back
    /// in. Returns `None` for an id this process never allocated.
    pub fn from_id(id: TypeId) -> Option<TyRef> {
        interner().resolve_type(id)
    }
}

impl PartialEq for TyRef {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for TyRef {}

/// Structural comparison against a plain [`Type`] (used heavily in tests).
impl PartialEq<Type> for TyRef {
    fn eq(&self, other: &Type) -> bool {
        *self.ty == *other
    }
}

impl Hash for TyRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.0.hash(state);
    }
}

impl Deref for TyRef {
    type Target = Type;

    fn deref(&self) -> &Type {
        &self.ty
    }
}

impl fmt::Display for TyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.ty.fmt(f)
    }
}

/// Structural, id-free `Debug`: interned states must print (and sort, when a
/// caller sorts by debug text) exactly like the plain types they stand for.
impl fmt::Debug for TyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.ty.fmt(f)
    }
}

/// The identity of an interned term: a dense 32-bit index, disjoint from the
/// [`TypeId`] space.
///
/// Two `TermId`s are equal **iff** the terms they name are structurally equal
/// (within one process). The numeric value is an allocation-order artifact —
/// never persist it, never order by it where determinism matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The raw index (for diagnostics and for sharding id-keyed side tables).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reassembles an id from its raw index (the inverse of
    /// [`TermId::index`]; see [`TypeId::from_index`] for the contract).
    pub fn from_index(index: u32) -> TermId {
        TermId(index)
    }
}

/// A handle to an interned [`Term`]: cheap to clone, O(1) `Eq`/`Hash` (by
/// [`TermId`]), dereferences to the underlying term — the term-side mirror of
/// [`TyRef`], used as the state representation of the open-term LTS
/// (Def. 4.1, Fig. 5).
///
/// Like [`TyRef`], a `TermRef` deliberately does **not** implement `Ord` and
/// its `Debug` is structural: nothing user-visible may depend on allocation
/// order. Consumers that need an order must compare [`TermRef::as_term`].
#[derive(Clone)]
pub struct TermRef {
    id: TermId,
    term: Arc<Term>,
}

impl TermRef {
    /// Interns a borrowed term, cloning it only if it was never seen before.
    pub fn intern(t: &Term) -> TermRef {
        interner().intern_term_or(t, None)
    }

    /// Interns an owned term (no clone on first intern).
    pub fn new(t: Term) -> TermRef {
        let arc = Arc::new(t);
        interner().intern_term_or(&arc.clone(), Some(arc))
    }

    /// Interns a term already behind an [`Arc`], sharing the allocation.
    pub fn from_arc(t: Arc<Term>) -> TermRef {
        interner().intern_term_or(&t.clone(), Some(t))
    }

    /// The interned term's identity.
    pub fn id(&self) -> TermId {
        self.id
    }

    /// The underlying term.
    pub fn as_term(&self) -> &Term {
        &self.term
    }

    /// The underlying shared allocation (lets callers build parent nodes
    /// without re-cloning the subtree).
    pub fn as_arc(&self) -> &Arc<Term> {
        &self.term
    }

    /// The ≡-flattened parallel components of the term (see
    /// [`crate::par_components`]), memoized per [`TermId`]: a `||` state is
    /// flattened once per process, after which every expansion is a hash
    /// lookup. The component multiset is exactly what the plain function
    /// returns (the property suite pins this).
    pub fn par_components(&self) -> Arc<[TermRef]> {
        interner().term_par_components(self)
    }

    /// The free term variables `fv(t)` (Def. 2.1), memoized per [`TermId`].
    pub fn free_vars(&self) -> Arc<BTreeSet<Name>> {
        interner().term_free_vars(self)
    }

    /// Resolves an id back to its interned term — the inverse of
    /// [`TermRef::id`], in O(1) (one shard lock plus an indexed load); the
    /// term-side mirror of [`TyRef::from_id`]. Returns `None` for an id this
    /// process never allocated.
    pub fn from_id(id: TermId) -> Option<TermRef> {
        interner().resolve_term(id)
    }

    /// Rebuilds a parallel composition from components (inverse of
    /// [`TermRef::par_components`], up to ≡ — `end` components are dropped).
    pub fn rebuild_par(components: &[TermRef]) -> TermRef {
        let non_end: Vec<&TermRef> = components
            .iter()
            .filter(|c| !matches!(c.as_term(), Term::End))
            .collect();
        match non_end.as_slice() {
            [] => TermRef::new(Term::End),
            [only] => (*only).clone(),
            many => TermRef::new(Term::par_all(many.iter().map(|c| c.as_term().clone()))),
        }
    }
}

impl PartialEq for TermRef {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for TermRef {}

/// Structural comparison against a plain [`Term`] (used heavily in tests).
impl PartialEq<Term> for TermRef {
    fn eq(&self, other: &Term) -> bool {
        *self.term == *other
    }
}

impl Hash for TermRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.0.hash(state);
    }
}

impl Deref for TermRef {
    type Target = Term;

    fn deref(&self) -> &Term {
        &self.term
    }
}

impl fmt::Display for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.term.fmt(f)
    }
}

/// Structural, id-free `Debug`: interned states must print (and sort, when a
/// caller sorts by debug text) exactly like the plain terms they stand for.
impl fmt::Debug for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.term.fmt(f)
    }
}

/// A point-in-time snapshot of the interner (see [`stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InternStats {
    /// Distinct types interned since process start.
    pub types: usize,
    /// Memoized-normalisation lookups that hit.
    pub normalize_hits: u64,
    /// Normalisations actually computed (memo misses).
    pub normalize_misses: u64,
    /// Memoized-canonicalisation lookups that hit.
    pub canonical_hits: u64,
    /// Canonical forms actually computed (memo misses).
    pub canonical_misses: u64,
    /// Distinct terms interned since process start.
    pub terms: usize,
    /// Memoized par-component lookups that hit.
    pub par_hits: u64,
    /// Par-component flattenings actually computed (memo misses).
    pub par_misses: u64,
    /// Memoized free-variable lookups that hit.
    pub fv_hits: u64,
    /// Free-variable sets actually computed (memo misses).
    pub fv_misses: u64,
}

/// A snapshot of the process-wide interner counters — the cost-accounting
/// hook for long-running services.
pub fn stats() -> InternStats {
    let i = interner();
    InternStats {
        types: i.count.load(Ordering::Relaxed) as usize,
        normalize_hits: i.normalize_hits.load(Ordering::Relaxed),
        normalize_misses: i.normalize_misses.load(Ordering::Relaxed),
        canonical_hits: i.canonical_hits.load(Ordering::Relaxed),
        canonical_misses: i.canonical_misses.load(Ordering::Relaxed),
        terms: i.term_count.load(Ordering::Relaxed) as usize,
        par_hits: i.par_hits.load(Ordering::Relaxed),
        par_misses: i.par_misses.load(Ordering::Relaxed),
        fv_hits: i.fv_hits.load(Ordering::Relaxed),
        fv_misses: i.fv_misses.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// The interner
// ---------------------------------------------------------------------------

struct Interner {
    /// Structural table: `type -> id`, hash-partitioned. All shards hash with
    /// this one state so a type's shard is stable.
    hasher: std::collections::hash_map::RandomState,
    shards: Vec<Mutex<HashMap<Arc<Type>, TyRef>>>,
    /// `id -> normalised form`, partitioned by id.
    normalized: Vec<Mutex<HashMap<u32, TyRef>>>,
    /// `(id, max_unfold) -> canonical form`, partitioned by id.
    canonical: Vec<Mutex<HashMap<(u32, u64), TyRef>>>,
    /// Structural term table: `term -> id`, hash-partitioned (same hasher).
    term_shards: Vec<Mutex<HashMap<Arc<Term>, TermRef>>>,
    /// `term id -> ≡-flattened parallel components`, partitioned by id.
    par_components: Vec<Mutex<HashMap<u32, Arc<[TermRef]>>>>,
    /// `term id -> free variable set`, partitioned by id.
    free_vars: Vec<Mutex<HashMap<u32, Arc<BTreeSet<Name>>>>>,
    /// `type id -> interned type`, partitioned by id low bits with dense
    /// per-shard slabs (`slot = id >> SHARD_BITS`): the O(1) reverse of the
    /// structural table, appended under the structural shard lock on every
    /// first intern.
    by_id: Vec<Mutex<Vec<Option<TyRef>>>>,
    /// `term id -> interned term`, same layout as `by_id`.
    term_by_id: Vec<Mutex<Vec<Option<TermRef>>>>,
    count: AtomicU64,
    term_count: AtomicU64,
    normalize_hits: AtomicU64,
    normalize_misses: AtomicU64,
    canonical_hits: AtomicU64,
    canonical_misses: AtomicU64,
    par_hits: AtomicU64,
    par_misses: AtomicU64,
    fv_hits: AtomicU64,
    fv_misses: AtomicU64,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        hasher: std::collections::hash_map::RandomState::new(),
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        normalized: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        canonical: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        term_shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        par_components: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        free_vars: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        by_id: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        term_by_id: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        count: AtomicU64::new(0),
        term_count: AtomicU64::new(0),
        normalize_hits: AtomicU64::new(0),
        normalize_misses: AtomicU64::new(0),
        canonical_hits: AtomicU64::new(0),
        canonical_misses: AtomicU64::new(0),
        par_hits: AtomicU64::new(0),
        par_misses: AtomicU64::new(0),
        fv_hits: AtomicU64::new(0),
        fv_misses: AtomicU64::new(0),
    })
}

/// Panic-free lock: a panicking worker already aborts its run; the interner's
/// tables are append-only maps that are never left half-updated.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Appends `value` at `id`'s slot of an id-indexed slab table. Ids are
/// allocated monotonically, so within one shard the slab only ever grows at
/// the tail; the `None` padding covers ids of the shard that are still being
/// registered by racing threads.
fn record_by_id<R: Clone>(table: &[Mutex<Vec<Option<R>>>], id: u32, value: &R) {
    let mut slab = lock(&table[id as usize & (SHARDS - 1)]);
    let slot = id as usize >> SHARD_BITS;
    if slab.len() <= slot {
        slab.resize(slot + 1, None);
    }
    slab[slot] = Some(value.clone());
}

/// Looks an id up in an id-indexed slab table.
fn lookup_by_id<R: Clone>(table: &[Mutex<Vec<Option<R>>>], id: u32) -> Option<R> {
    lock(&table[id as usize & (SHARDS - 1)])
        .get(id as usize >> SHARD_BITS)
        .and_then(|slot| slot.clone())
}

impl Interner {
    fn shard_of(&self, ty: &Type) -> usize {
        (self.hasher.hash_one(ty) as usize) & (SHARDS - 1)
    }

    fn resolve_type(&self, id: TypeId) -> Option<TyRef> {
        lookup_by_id(&self.by_id, id.0)
    }

    fn resolve_term(&self, id: TermId) -> Option<TermRef> {
        lookup_by_id(&self.term_by_id, id.0)
    }

    /// Looks `ty` up; on a miss, registers either the provided owned `Arc`
    /// (no tree clone) or a fresh clone of `ty`.
    fn intern_arc_or(&self, ty: &Type, owned: Option<Arc<Type>>) -> TyRef {
        let mut shard = lock(&self.shards[self.shard_of(ty)]);
        if let Some(found) = shard.get(ty) {
            return found.clone();
        }
        let arc = owned.unwrap_or_else(|| Arc::new(ty.clone()));
        // The counter is 64-bit so it can never wrap in practice; the assert
        // turns id-space exhaustion into a loud abort instead of silently
        // reassigning a live 32-bit id (which would alias structurally
        // distinct types and corrupt every id-keyed table downstream).
        let raw = self.count.fetch_add(1, Ordering::Relaxed);
        assert!(
            raw < u64::from(u32::MAX),
            "type interner exhausted its 32-bit id space"
        );
        let id = TypeId(raw as u32);
        let tyref = TyRef {
            id,
            ty: Arc::clone(&arc),
        };
        shard.insert(arc, tyref.clone());
        record_by_id(&self.by_id, id.0, &tyref);
        tyref
    }

    /// Looks `term` up; on a miss, registers either the provided owned `Arc`
    /// (no tree clone) or a fresh clone of `term`.
    fn intern_term_or(&self, term: &Term, owned: Option<Arc<Term>>) -> TermRef {
        let shard_of = (self.hasher.hash_one(term) as usize) & (SHARDS - 1);
        let mut shard = lock(&self.term_shards[shard_of]);
        if let Some(found) = shard.get(term) {
            return found.clone();
        }
        let arc = owned.unwrap_or_else(|| Arc::new(term.clone()));
        // Same overflow discipline as the type table: aliasing two distinct
        // terms under one 32-bit id would corrupt every id-keyed seen-set
        // and memo downstream, so exhaustion aborts loudly.
        let raw = self.term_count.fetch_add(1, Ordering::Relaxed);
        assert!(
            raw < u64::from(u32::MAX),
            "term interner exhausted its 32-bit id space"
        );
        let id = TermId(raw as u32);
        let termref = TermRef {
            id,
            term: Arc::clone(&arc),
        };
        shard.insert(arc, termref.clone());
        record_by_id(&self.term_by_id, id.0, &termref);
        termref
    }

    /// Memoized ≡-flattening of parallel components; reproduces
    /// `crate::par_components` exactly, member-by-member, so every distinct
    /// `||` subtree lands in the memo too.
    fn term_par_components(&self, t: &TermRef) -> Arc<[TermRef]> {
        let shard = &self.par_components[t.id.0 as usize & (SHARDS - 1)];
        if let Some(hit) = lock(shard).get(&t.id.0) {
            self.par_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.par_misses.fetch_add(1, Ordering::Relaxed);
        let computed: Arc<[TermRef]> = match t.as_term() {
            Term::Par(a, b) => {
                let left = self.term_par_components(&TermRef::from_arc(Arc::clone(a)));
                let right = self.term_par_components(&TermRef::from_arc(Arc::clone(b)));
                let non_end: Vec<TermRef> = left
                    .iter()
                    .chain(right.iter())
                    .filter(|c| !matches!(c.as_term(), Term::End))
                    .cloned()
                    .collect();
                if non_end.is_empty() {
                    [TermRef::new(Term::End)].into()
                } else {
                    non_end.into()
                }
            }
            _ => [t.clone()].into(),
        };
        lock(shard).entry(t.id.0).or_insert(computed).clone()
    }

    /// Memoized free-variable sets (`fv(t)`, Def. 2.1).
    fn term_free_vars(&self, t: &TermRef) -> Arc<BTreeSet<Name>> {
        let shard = &self.free_vars[t.id.0 as usize & (SHARDS - 1)];
        if let Some(hit) = lock(shard).get(&t.id.0) {
            self.fv_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.fv_misses.fetch_add(1, Ordering::Relaxed);
        let computed: Arc<BTreeSet<Name>> = Arc::new(t.as_term().free_vars());
        lock(shard).entry(t.id.0).or_insert(computed).clone()
    }

    fn lookup_normalized(&self, id: TypeId) -> Option<TyRef> {
        lock(&self.normalized[id.0 as usize & (SHARDS - 1)])
            .get(&id.0)
            .cloned()
    }

    fn store_normalized(&self, id: TypeId, value: &TyRef) {
        lock(&self.normalized[id.0 as usize & (SHARDS - 1)]).insert(id.0, value.clone());
    }

    /// Memoized [`Type::normalize`]. Reproduces the plain function exactly —
    /// member-by-member, so every distinct subtree lands in the memo too.
    fn normalized(&self, t: &TyRef) -> TyRef {
        if let Some(hit) = self.lookup_normalized(t.id) {
            self.normalize_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.normalize_misses.fetch_add(1, Ordering::Relaxed);
        let normal = self.compute_normalized(t);
        self.store_normalized(t.id, &normal);
        // The normal form is its own normal form (normalisation is
        // idempotent — pinned by `ty.rs` tests): record it so future
        // normalisations of already-normal states are O(1) without a walk.
        if normal.id != t.id {
            self.store_normalized(normal.id, &normal);
        }
        normal
    }

    /// One level of [`Type::normalize`], recursing through the memo. The
    /// result is structurally identical to `t.as_type().normalize()` (the
    /// property suite asserts this over generated types).
    fn compute_normalized(&self, t: &TyRef) -> TyRef {
        let child = |arc: &Arc<Type>| self.normalized(&TyRef::from_arc(Arc::clone(arc)));
        match t.as_type() {
            Type::Union(..) => {
                let mut members: Vec<Type> = t
                    .union_members()
                    .iter()
                    .flat_map(|m| self.normalized(&TyRef::intern(m)).as_type().union_members())
                    .collect();
                members.sort();
                members.dedup();
                TyRef::new(Type::union_all(members))
            }
            Type::Par(..) => {
                let mut members: Vec<Type> = t
                    .par_members()
                    .iter()
                    .flat_map(|m| self.normalized(&TyRef::intern(m)).as_type().par_members())
                    .collect();
                members.retain(|m| !matches!(m, Type::Nil));
                members.sort();
                TyRef::new(Type::par_all(members))
            }
            Type::Pi(x, dom, body) => TyRef::new(Type::Pi(
                x.clone(),
                Arc::clone(child(dom).as_arc()),
                Arc::clone(child(body).as_arc()),
            )),
            Type::Rec(x, body) => {
                TyRef::new(Type::Rec(x.clone(), Arc::clone(child(body).as_arc())))
            }
            Type::ChanIO(inner) => TyRef::new(Type::ChanIO(Arc::clone(child(inner).as_arc()))),
            Type::ChanIn(inner) => TyRef::new(Type::ChanIn(Arc::clone(child(inner).as_arc()))),
            Type::ChanOut(inner) => TyRef::new(Type::ChanOut(Arc::clone(child(inner).as_arc()))),
            Type::Out(a, b, c) => TyRef::new(Type::Out(
                Arc::clone(child(a).as_arc()),
                Arc::clone(child(b).as_arc()),
                Arc::clone(child(c).as_arc()),
            )),
            Type::In(a, b) => TyRef::new(Type::In(
                Arc::clone(child(a).as_arc()),
                Arc::clone(child(b).as_arc()),
            )),
            _ => t.clone(),
        }
    }

    /// Memoized `normalize().unfold_head(max_unfold)` — the canonical
    /// LTS-state representation.
    fn canonical(&self, t: &TyRef, max_unfold: usize) -> TyRef {
        let key = (t.id.0, max_unfold as u64);
        let shard = &self.canonical[t.id.0 as usize & (SHARDS - 1)];
        if let Some(hit) = lock(shard).get(&key) {
            self.canonical_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.canonical_misses.fetch_add(1, Ordering::Relaxed);
        let normal = self.normalized(t);
        let unfolded = matches!(normal.as_type(), Type::Rec(..));
        let canon = if unfolded {
            TyRef::new(normal.as_type().unfold_head(max_unfold))
        } else {
            normal
        };
        lock(shard).insert(key, canon.clone());
        // When no unfolding happened, the canonical form is a *normal* form
        // and hence a fixpoint (normalisation is idempotent, nothing to
        // unfold): record it as its own canonical form so re-canonicalising
        // already-canonical states is an O(1) fast-path hit. An *unfolded*
        // result must NOT be recorded this way: `unfold_head` substitutes
        // into sorted unions/pars and can leave them unsorted, so its output
        // is not necessarily normal and has to go through a real
        // normalisation when first canonicalised in its own right.
        if canon.id != t.id && !unfolded {
            let back_key = (canon.id.0, max_unfold as u64);
            lock(&self.canonical[canon.id.0 as usize & (SHARDS - 1)])
                .entry(back_key)
                .or_insert_with(|| canon.clone());
        }
        canon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;

    fn payment_like() -> Type {
        Type::rec(
            "t",
            Type::inp(
                Type::var("self"),
                Type::pi(
                    "pay",
                    Type::Int,
                    Type::union(
                        Type::out(
                            Type::var("client"),
                            Type::Str,
                            Type::thunk(Type::rec_var("t")),
                        ),
                        Type::out(
                            Type::var("aud"),
                            Type::var("pay"),
                            Type::thunk(Type::rec_var("t")),
                        ),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn structurally_equal_types_share_one_id() {
        let a = TyRef::intern(&payment_like());
        let b = TyRef::new(payment_like());
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        let c = TyRef::intern(&Type::par(Type::Nil, payment_like()));
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn hash_and_eq_are_by_id_but_match_structure() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TyRef::intern(&Type::Int));
        set.insert(TyRef::new(Type::Int));
        set.insert(TyRef::intern(&Type::Bool));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn normalized_matches_plain_normalize() {
        let samples = [
            payment_like(),
            Type::par(Type::Nil, Type::par(Type::var("b"), Type::var("a"))),
            Type::union(Type::Bool, Type::union(Type::Int, Type::Bool)),
            Type::par(
                Type::union(Type::var("y"), Type::var("x")),
                Type::par(Type::Nil, Type::Nil),
            ),
            Type::pi(
                "x",
                Type::union(Type::Str, Type::Int),
                Type::par(Type::Nil, Type::var("x")),
            ),
        ];
        for ty in samples {
            let plain = ty.normalize();
            let interned = TyRef::intern(&ty).normalized();
            assert_eq!(*interned.as_type(), plain, "{ty}");
            // Idempotence through the memo.
            assert_eq!(interned.normalized(), interned);
            assert!(interned.is_normal());
        }
    }

    #[test]
    fn canonical_matches_normalize_then_unfold_head() {
        let ty = payment_like();
        let plain = ty.normalize().unfold_head(16);
        let interned = TyRef::intern(&ty).canonical(16);
        assert_eq!(*interned.as_type(), plain);
        // The canonical form of a canonical form is itself.
        assert_eq!(interned.canonical(16), interned);
        // Distinct unfold budgets are distinct memo keys, same result here
        // (one head unfold suffices for this type).
        assert_eq!(*TyRef::intern(&ty).canonical(8).as_type(), plain);
    }

    #[test]
    fn canonical_never_pins_a_non_normal_unfolding_as_its_own_fixpoint() {
        // µt.p[x, t] unfolds to p[x, µt.p[x, t]], which is NOT sorted
        // (Rec orders before Var): canonicalising the recursive type first
        // must not poison the memo entry of its (non-normal) unfolding.
        let rec = Type::rec("t", Type::par(Type::var("x"), Type::rec_var("t")));
        for max_unfold in [1, 4, 16] {
            assert_eq!(
                *TyRef::intern(&rec).canonical(max_unfold).as_type(),
                rec.normalize().unfold_head(max_unfold),
                "max_unfold {max_unfold}"
            );
            let unfolded = rec.unfold();
            assert_eq!(
                *TyRef::intern(&unfolded).canonical(max_unfold).as_type(),
                unfolded.normalize().unfold_head(max_unfold),
                "max_unfold {max_unfold}: the unfolded spelling must go \
                 through a real normalisation"
            );
        }
    }

    #[test]
    fn display_and_debug_are_structural() {
        let ty = Type::out(Type::var("x"), Type::Int, Type::thunk(Type::Nil));
        let r = TyRef::intern(&ty);
        assert_eq!(r.to_string(), ty.to_string());
        assert_eq!(format!("{r:?}"), format!("{ty:?}"));
    }

    #[test]
    fn tyref_compares_against_plain_types() {
        let r = TyRef::intern(&Type::Nil);
        assert_eq!(r, Type::Nil);
        assert!(r != Type::Proc);
    }

    #[test]
    fn interning_is_thread_safe_and_consistent() {
        let ids: Vec<TypeId> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut last = None;
                        for _ in 0..200 {
                            let r = TyRef::new(payment_like());
                            let n = r.normalized();
                            assert_eq!(*n.as_type(), payment_like().normalize());
                            last = Some(r.id());
                        }
                        last.unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn structurally_equal_terms_share_one_id() {
        use crate::term::Term;
        let mk = || {
            Term::par(
                Term::send(Term::var("x"), Term::int(1), Term::thunk(Term::End)),
                Term::recv(Term::var("x"), Term::lam("v", Type::Int, Term::End)),
            )
        };
        let a = TermRef::intern(&mk());
        let b = TermRef::new(mk());
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        let c = TermRef::intern(&Term::par(mk(), Term::End));
        assert_ne!(a.id(), c.id());
        assert_eq!(a, mk());
    }

    #[test]
    fn term_par_components_match_the_plain_flattening() {
        use crate::reduce::par_components;
        use crate::term::Term;
        let samples = [
            Term::End,
            Term::var("x"),
            Term::par(Term::End, Term::End),
            Term::par(
                Term::End,
                Term::par(
                    Term::send(Term::var("x"), Term::int(1), Term::thunk(Term::End)),
                    Term::End,
                ),
            ),
            Term::par(
                Term::par(Term::var("a"), Term::var("b")),
                Term::par(Term::var("c"), Term::End),
            ),
        ];
        for t in samples {
            let interned: Vec<Term> = TermRef::intern(&t)
                .par_components()
                .iter()
                .map(|c| c.as_term().clone())
                .collect();
            assert_eq!(interned, par_components(&t), "{t}");
            // The memoized call is stable.
            assert_eq!(
                TermRef::intern(&t).par_components(),
                TermRef::intern(&t).par_components()
            );
        }
    }

    #[test]
    fn term_free_vars_match_the_plain_query() {
        use crate::term::Term;
        let t = Term::send(
            Term::var("c"),
            Term::var("x"),
            Term::thunk(Term::app(Term::var("f"), Term::unit())),
        );
        let interned = TermRef::intern(&t);
        assert_eq!(*interned.free_vars(), t.free_vars());
        // Second call is a memo hit returning the same allocation.
        assert!(Arc::ptr_eq(&interned.free_vars(), &interned.free_vars()));
    }

    #[test]
    fn rebuild_par_refs_apply_the_congruence() {
        use crate::term::Term;
        let x = TermRef::intern(&Term::var("x"));
        let end = TermRef::intern(&Term::End);
        assert_eq!(TermRef::rebuild_par(&[]), Term::End);
        assert_eq!(TermRef::rebuild_par(std::slice::from_ref(&end)), Term::End);
        assert_eq!(TermRef::rebuild_par(&[x.clone(), end]), Term::var("x"));
        let rebuilt = TermRef::rebuild_par(&[x.clone(), x.clone()]);
        assert_eq!(rebuilt, Term::par(Term::var("x"), Term::var("x")));
    }

    #[test]
    fn ids_resolve_back_to_their_interned_trees() {
        let ty = TyRef::intern(&payment_like());
        let resolved = TyRef::from_id(ty.id()).expect("allocated type id resolves");
        assert_eq!(resolved.id(), ty.id());
        assert_eq!(resolved.as_type(), ty.as_type());
        assert_eq!(TypeId::from_index(ty.id().index()), ty.id());

        let term = TermRef::intern(&Term::par(
            Term::var("from_id_probe"),
            Term::var("from_id_probe2"),
        ));
        let resolved = TermRef::from_id(term.id()).expect("allocated term id resolves");
        assert_eq!(resolved.id(), term.id());
        assert_eq!(resolved.as_term(), term.as_term());
        assert_eq!(TermId::from_index(term.id().index()), term.id());

        // An id this process never allocated resolves to nothing.
        assert!(TyRef::from_id(TypeId::from_index(u32::MAX - 1)).is_none());
        assert!(TermRef::from_id(TermId::from_index(u32::MAX - 1)).is_none());
    }

    #[test]
    fn stats_move_forward() {
        let before = stats();
        let unique = Type::out(Type::var("stats_probe"), Type::Int, Type::thunk(Type::Nil));
        let r = TyRef::intern(&unique);
        let _ = r.normalized();
        let _ = r.normalized();
        let after = stats();
        assert!(after.types > 0);
        assert!(
            after.normalize_hits + after.normalize_misses
                > before.normalize_hits + before.normalize_misses
        );
        let term = Term::par(
            Term::var("stats_probe_term"),
            Term::var("stats_probe_term2"),
        );
        let r = TermRef::intern(&term);
        let _ = r.par_components();
        let _ = r.free_vars();
        let after = stats();
        assert!(after.terms > 0);
        assert!(after.par_hits + after.par_misses > 0);
        assert!(after.fv_hits + after.fv_misses > 0);
        let _ = Name::new("keep-name-import");
    }
}

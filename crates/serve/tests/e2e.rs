//! End-to-end tests of the `effpi-serve` daemon: the acceptance contract of
//! the verification service.
//!
//! * a warm cache hit returns a report whose `stable_line` (and indeed whole
//!   wire rendering) is byte-identical to the cold run;
//! * four concurrent clients over the shipped `examples/specs/*.effpi` all
//!   get verdicts identical to direct `effpi::Session` runs;
//! * cancellation, stats, protocol errors and graceful shutdown behave as
//!   `PROTOCOL.md` documents, over TCP and over a Unix socket.

use std::path::PathBuf;
use std::thread;

use serve::{
    CacheConfig, Client, ClientError, Endpoints, Request, Server, ServerConfig, VerifyOptions,
};
use wire::Json;

/// The state bound every test (and every direct-run comparison) uses.
const MAX_STATES: usize = 60_000;

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        jobs: 4,
        cache: CacheConfig::default(),
        default_max_states: MAX_STATES,
        store: None,
        log_requests: false,
        ..ServerConfig::default()
    }
}

fn start_tcp() -> (serve::ServerHandle, String) {
    let handle = Server::start(
        &Endpoints {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
        },
        server_config(),
    )
    .expect("start server");
    let addr = handle.tcp_addr().expect("tcp endpoint").to_string();
    (handle, addr)
}

/// Every shipped `.effpi` spec, by name.
fn shipped_specs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut specs: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("examples/specs exists")
        .map(|entry| entry.expect("read entry").path())
        .filter(|path| path.extension().is_some_and(|e| e == "effpi"))
        .map(|path| {
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&path).expect("read spec"),
            )
        })
        .collect();
    specs.sort();
    assert!(specs.len() >= 2, "expected the shipped sample specs");
    specs
}

/// The stable line a direct (server-less) pipeline run produces for `text`,
/// configured exactly like the server's workers.
fn direct_stable_line(text: &str) -> String {
    effpi::Session::builder()
        .max_states(MAX_STATES)
        .build()
        .run_spec_text(text)
        .expect("spec parses")
        .summary()
        .stable_line()
}

#[test]
fn warm_cache_hits_replay_the_cold_run_byte_identically() {
    let (handle, addr) = start_tcp();
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let spec = &shipped_specs()[0].1;

    let cold = client
        .verify(spec, VerifyOptions::default())
        .expect("cold run");
    assert!(!cold.cached, "first encounter must miss");
    let warm = client
        .verify(spec, VerifyOptions::default())
        .expect("warm run");
    assert!(warm.cached, "second encounter must hit");

    // Byte-identical: the whole decoded report agrees, stable line included,
    // and the stable line also matches a direct Session run.
    assert_eq!(warm.report, cold.report);
    assert_eq!(warm.report.stable_line, cold.report.stable_line);
    assert_eq!(warm.key, cold.key);
    assert_eq!(cold.report.stable_line, direct_stable_line(spec));

    // A normalisation-equivalent respelling (comments added) hits the same
    // entry: the cache is content-addressed, not text-addressed.
    let respelled = format!("// a comment the cache key must ignore\n{spec}");
    let alias = client
        .verify(&respelled, VerifyOptions::default())
        .expect("respelled run");
    assert!(alias.cached, "respelled spec must hit the same entry");
    assert_eq!(alias.key, cold.key);
    assert_eq!(alias.report, cold.report);

    handle.shutdown();
}

#[test]
fn four_concurrent_clients_match_direct_session_runs() {
    let (handle, addr) = start_tcp();
    let specs = shipped_specs();
    let expected: Vec<String> = specs
        .iter()
        .map(|(_, text)| direct_stable_line(text))
        .collect();

    thread::scope(|scope| {
        for client_no in 0..4 {
            let addr = addr.clone();
            let specs = &specs;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                // Two passes: the second is all warm, and must agree too.
                for pass in 0..2 {
                    for ((name, text), want) in specs.iter().zip(expected) {
                        let reply = client
                            .verify(text, VerifyOptions::default())
                            .unwrap_or_else(|e| panic!("client {client_no} {name}: {e}"));
                        assert_eq!(
                            &reply.report.stable_line, want,
                            "client {client_no} pass {pass} {name}: verdict drift"
                        );
                    }
                }
            });
        }
    });

    // After 4 clients x 2 passes of the same specs, the cache must be warm.
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_usize)
        .expect("cache.hits");
    assert!(
        hits > 0,
        "repeated workload produced no cache hits: {stats}"
    );

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_via_the_protocol() {
    let (handle, addr) = start_tcp();
    let spec = &shipped_specs()[0].1;

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let reply = client
        .verify(spec, VerifyOptions::default())
        .expect("verify");
    assert!(reply.report.states > 0);

    // The shutdown op is acknowledged, then the server drains and exits:
    // join() returns rather than blocking forever.
    client.shutdown_server().expect("shutdown ack");
    handle.join();

    // The listener is gone afterwards (give the OS a moment to tear down).
    let refused = (0..50).any(|_| {
        thread::sleep(std::time::Duration::from_millis(20));
        Client::connect_tcp(&addr).is_err()
    });
    assert!(refused, "listener still accepting after shutdown");
}

#[test]
fn graceful_drain_completes_already_queued_work() {
    let (handle, addr) = start_tcp();
    let spec = &shipped_specs()[0].1;
    let mut client = Client::connect_tcp(&addr).expect("connect");

    // Queue real work, then ask for shutdown on a second connection: the
    // queued verify must still be answered (the drain guarantee), whether or
    // not it had started when the drain began. Connections are not ordered
    // relative to each other, so first make sure the job is server-side —
    // the drain guarantee covers *accepted* work, not in-flight bytes.
    let id = client
        .submit_verify(spec, VerifyOptions::default())
        .expect("submit");
    let mut admin = Client::connect_tcp(&addr).expect("connect admin");
    let accepted = |stats: &Json| {
        ["queued", "in_flight", "completed"]
            .iter()
            .filter_map(|k| stats.get("requests").and_then(|r| r.get(k)))
            .filter_map(Json::as_usize)
            .sum::<usize>()
            >= 1
    };
    while !accepted(&admin.stats().expect("stats")) {
        thread::sleep(std::time::Duration::from_millis(5));
    }
    admin.shutdown_server().expect("shutdown ack");

    let response = client.recv().expect("drained response");
    assert_eq!(response.id, Some(id), "queued verify is answered");
    let body = response.into_ok().expect("queued verify succeeds");
    assert!(body.get("report").is_some());

    handle.join();
}

#[test]
fn cancellation_stats_and_protocol_errors() {
    let (handle, addr) = start_tcp();
    // One worker ⇒ the second request stays queued while the first runs, so
    // cancelling it is deterministic.
    let slow_handle_addr = {
        let handle2 = Server::start(
            &Endpoints {
                tcp: Some("127.0.0.1:0".to_string()),
                unix: None,
            },
            ServerConfig {
                workers: 1,
                jobs: 1,
                ..server_config()
            },
        )
        .expect("start 1-worker server");
        let addr2 = handle2.tcp_addr().unwrap().to_string();
        (handle2, addr2)
    };
    let (handle2, addr2) = slow_handle_addr;
    let specs = shipped_specs();

    {
        let mut client = Client::connect_tcp(&addr2).expect("connect");
        // Occupy the only worker, then queue a second request and cancel it.
        let running = client
            .submit_verify(&specs[0].1, VerifyOptions::default())
            .expect("submit running");
        let queued = client
            .submit_verify(&specs[1].1, VerifyOptions::default())
            .expect("submit queued");
        let honoured = client.cancel(queued).expect("cancel");
        // The queued job may have started if the first finished quickly;
        // both worlds must stay consistent.
        let mut verdicts = std::collections::HashMap::new();
        for _ in 0..2 {
            let response = client.recv().expect("response");
            let id = response.id.expect("addressed response");
            verdicts.insert(id, response.into_ok());
        }
        assert!(verdicts[&running].is_ok(), "running request completes");
        let queued_outcome = verdicts.remove(&queued).expect("queued answered");
        if honoured {
            let err = queued_outcome.expect_err("honoured cancel drops the job");
            match err {
                ClientError::Server { kind, .. } => assert_eq!(kind, "cancelled"),
                other => panic!("expected a server error, got {other}"),
            }
        } else {
            assert!(queued_outcome.is_ok(), "unhonoured cancel ⇒ normal verdict");
        }
        // Cancelling an unknown id is answered, not an error.
        assert!(!client.cancel(99_999).expect("cancel unknown"));
        handle2.shutdown();
    }

    let mut client = Client::connect_tcp(&addr).expect("connect");
    // Stats carry the documented sections.
    client
        .verify(&specs[0].1, VerifyOptions::default())
        .expect("verify");
    let stats = client.stats().expect("stats");
    for section in ["cache", "requests", "engine"] {
        assert!(stats.get(section).is_some(), "stats missing {section}");
    }
    assert!(
        stats
            .get("engine")
            .and_then(|e| e.get("states_explored"))
            .and_then(Json::as_usize)
            .expect("states_explored")
            > 0
    );

    // Spec errors are addressed, typed refusals — not dropped connections.
    let err = client
        .verify("bogus statement", VerifyOptions::default())
        .expect_err("malformed spec");
    match err {
        ClientError::Server { kind, message, .. } => {
            assert_eq!(kind, "spec");
            assert!(message.contains("line 1"), "{message}");
        }
        other => panic!("expected a spec refusal, got {other}"),
    }

    // Raw protocol garbage gets a protocol error with a null id, and the
    // connection stays usable.
    let raw = Request::Ping { id: 77 }.to_line();
    {
        // Reach under the typed client: write a garbage line, then a ping.
        let mut stream = std::net::TcpStream::connect(&addr).expect("raw connect");
        use std::io::{BufRead, BufReader, Write};
        stream
            .write_all(b"this is not json\n")
            .expect("write garbage");
        stream.write_all(raw.as_bytes()).expect("write ping");
        stream.write_all(b"\n").expect("write newline");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("error frame");
        let frame = Json::parse(line.trim()).expect("error frame is JSON");
        assert_eq!(frame.get("id"), Some(&Json::Null));
        assert_eq!(
            frame
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("protocol")
        );
        line.clear();
        reader.read_line(&mut line).expect("pong frame");
        let frame = Json::parse(line.trim()).expect("pong is JSON");
        assert_eq!(frame.get("id").and_then(Json::as_usize), Some(77));
    }

    handle.shutdown();
}

#[test]
fn hostile_frames_are_refused_without_harming_the_server() {
    let (handle, addr) = start_tcp();

    // A deeply nested JSON bomb must be refused as a protocol error (the
    // wire parser bounds nesting), not crash the reader thread.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        let bomb = format!("{}\n", "[".repeat(100_000));
        stream.write_all(bomb.as_bytes()).expect("write bomb");
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).expect("reply");
        let frame = Json::parse(line.trim()).expect("error frame");
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(false));
    }

    // An endless newline-free stream is cut off at the frame-size cap with
    // one protocol error, then the connection is dropped.
    {
        use std::io::{BufRead, BufReader, Read, Write};
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        let chunk = vec![b'x'; 1 << 20];
        let mut reply = BufReader::new(stream.try_clone().expect("clone"));
        for _ in 0..6 {
            if stream.write_all(&chunk).is_err() {
                break; // server already dropped us — also acceptable
            }
        }
        let mut line = String::new();
        if reply.read_line(&mut line).is_ok() && !line.trim().is_empty() {
            let frame = Json::parse(line.trim()).expect("error frame");
            assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(false));
        }
        // Either way the stream must be over (no hang, no crash).
        let mut rest = Vec::new();
        let _ = reply.read_to_end(&mut rest);
    }

    // The server is still fully alive for honest clients.
    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.ping().expect("ping after hostile frames");
    let reply = client
        .verify(&shipped_specs()[0].1, VerifyOptions::default())
        .expect("verify after hostile frames");
    assert!(reply.report.states > 0);

    handle.shutdown();
}

/// A spec whose state space is far too large to finish between "the worker
/// picked it up" and "the cancel frame arrives": `k` independent two-state
/// loops composed in parallel (2^k product states), all channels visible.
/// The `max_states` option bounds memory if cancellation were ever broken —
/// the run would then end in a (non-cancelled) state-bound error, failing
/// the test loudly instead of hanging it.
fn huge_parallel_spec(k: usize) -> String {
    use std::fmt::Write as _;
    let mut spec = String::new();
    for i in 0..k {
        let _ = writeln!(spec, "env a{i} : cio[()]");
    }
    for i in 0..k {
        let _ = writeln!(spec, "visible a{i}");
    }
    let component = |i: usize| format!("rec r{i} . i[a{i}, Pi(t: ()) o[a{i}, (), Pi() r{i}]]");
    let mut ty = component(k - 1);
    for i in (0..k - 1).rev() {
        ty = format!("p[ {}, {ty} ]", component(i));
    }
    let _ = writeln!(spec, "type {ty}");
    spec.push_str("check deadlock_free []\n");
    spec
}

#[test]
fn cancel_aborts_an_in_flight_exploration() {
    // One worker, serial exploration: the big job owns the pool, and the
    // in_flight counter tells us exactly when it is executing.
    let handle = Server::start(
        &Endpoints {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
        },
        ServerConfig {
            workers: 1,
            jobs: 1,
            ..server_config()
        },
    )
    .expect("start 1-worker server");
    let addr = handle.tcp_addr().unwrap().to_string();

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let spec = huge_parallel_spec(16); // 2^16 product states
    let options = VerifyOptions {
        max_states: Some(40_000),
        ..VerifyOptions::default()
    };
    let started = std::time::Instant::now();
    let id = client.submit_verify(&spec, options).expect("submit");

    // Wait until the worker has dequeued the job and is exploring.
    let mut admin = Client::connect_tcp(&addr).expect("connect admin");
    loop {
        let stats = admin.stats().expect("stats");
        let in_flight = stats
            .get("requests")
            .and_then(|r| r.get("in_flight"))
            .and_then(Json::as_usize)
            .expect("requests.in_flight");
        if in_flight >= 1 {
            break;
        }
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "the verify never started"
        );
        thread::sleep(std::time::Duration::from_millis(2));
    }

    // Cancel it mid-exploration. The ack says the job could not be dropped
    // *unrun* (it had started) — the abort arrives on the verify response.
    let honoured = client.cancel(id).expect("cancel");
    assert!(!honoured, "a started job cannot be dropped unrun");
    let response = client.recv().expect("verify answered");
    assert_eq!(response.id, Some(id));
    match response.into_ok() {
        Err(ClientError::Server { kind, message, .. }) => {
            assert_eq!(kind, "cancelled", "{message}");
            assert!(
                message.contains("during exploration"),
                "expected the in-flight abort path, got: {message}"
            );
        }
        other => panic!("expected an in-flight cancellation, got {other:?}"),
    }

    // The abort freed the only worker: the server answers real work again,
    // and the aborted run polluted nothing (a fresh small spec verifies).
    let reply = client
        .verify(&shipped_specs()[0].1, VerifyOptions::default())
        .expect("verify after cancel");
    assert!(reply.report.states > 0);
    let stats = admin.stats().expect("stats");
    let cancelled = stats
        .get("requests")
        .and_then(|r| r.get("cancelled"))
        .and_then(Json::as_usize)
        .expect("requests.cancelled");
    assert!(cancelled >= 1, "the abort must be accounted: {stats}");

    handle.shutdown();
}

#[cfg(unix)]
#[test]
fn unix_socket_endpoint_serves_and_cleans_up() {
    let path = std::env::temp_dir().join(format!("effpi-serve-test-{}.sock", std::process::id()));
    let handle = Server::start(
        &Endpoints {
            tcp: None,
            unix: Some(path.clone()),
        },
        server_config(),
    )
    .expect("start unix server");

    let spec = &shipped_specs()[0].1;
    let mut client = Client::connect_unix(&path).expect("connect over unix socket");
    let cold = client
        .verify(spec, VerifyOptions::default())
        .expect("verify");
    assert_eq!(cold.report.stable_line, direct_stable_line(spec));
    let warm = client
        .verify(spec, VerifyOptions::default())
        .expect("verify again");
    assert!(warm.cached);
    assert_eq!(warm.report, cold.report);

    handle.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn metrics_exports_the_stats_gauges_in_both_formats() {
    let (handle, addr) = start_tcp();
    let spec = &shipped_specs()[0].1;
    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.verify(spec, VerifyOptions::default()).expect("cold");
    client.verify(spec, VerifyOptions::default()).expect("warm");

    // The JSON snapshot carries every section/field of the stats schema as a
    // `{section}_{field}` gauge (store excepted: this server has no disk
    // tier, so its gauges may simply be absent), plus the per-phase span
    // histograms the verifications recorded.
    let metrics = client.metrics().expect("metrics");
    let gauges = metrics.get("gauges").expect("gauges object");
    for (section, fields) in serve::STATS_SCHEMA {
        if *section == "store" {
            continue;
        }
        for field in *fields {
            assert!(
                gauges.get(&format!("{section}_{field}")).is_some(),
                "gauge {section}_{field} missing from metrics"
            );
        }
    }
    let histograms = metrics.get("histograms").expect("histograms object");
    for span in ["parse", "fingerprint", "lru_probe", "explore", "render"] {
        let hist = histograms
            .get(&format!("span_{span}_us"))
            .unwrap_or_else(|| panic!("histogram span_{span}_us missing"));
        assert!(
            hist.get("count").and_then(Json::as_usize).unwrap_or(0) >= 1,
            "span_{span}_us recorded nothing"
        );
    }

    // The stats reply and the metrics gauges describe the same values.
    let stats = client.stats().expect("stats");
    let engine_workers = stats
        .get("engine")
        .and_then(|e| e.get("workers"))
        .and_then(Json::as_usize);
    assert_eq!(engine_workers, Some(4));

    // The text exposition renders the same snapshot with the effpi_ prefix.
    let text = client.metrics_text().expect("metrics text");
    assert!(text.contains("# TYPE effpi_engine_workers gauge"), "{text}");
    assert!(text.contains("effpi_engine_workers 4"), "{text}");
    assert!(text.contains("effpi_span_explore_us_bucket"), "{text}");

    client.shutdown_server().expect("shutdown");
    handle.join();
}

#[test]
fn profiled_verifies_carry_phases_and_unprofiled_frames_are_unchanged() {
    let (handle, addr) = start_tcp();
    let spec = &shipped_specs()[0].1;
    let mut client = Client::connect_tcp(&addr).expect("connect");

    // A profiled cold run: the frame carries a "phases" object whose keys
    // cover the whole life of the request.
    let id = client
        .submit_verify(
            spec,
            VerifyOptions {
                profile: true,
                ..VerifyOptions::default()
            },
        )
        .expect("submit");
    let response = client.recv().expect("response");
    assert_eq!(response.id, Some(id));
    let body = response.into_ok().expect("ok");
    let phases = body.get("phases").expect("profiled frame carries phases");
    for key in ["parse_us", "fingerprint_us", "explore_us", "render_us"] {
        assert!(
            phases.get(key).and_then(Json::as_usize).is_some(),
            "missing phase {key} in {phases}"
        );
    }

    // A profiled warm hit replays the same report bytes and times the probe.
    let id = client
        .submit_verify(
            spec,
            VerifyOptions {
                profile: true,
                ..VerifyOptions::default()
            },
        )
        .expect("submit warm");
    let response = client.recv().expect("warm response");
    assert_eq!(response.id, Some(id));
    let body = response.into_ok().expect("ok");
    assert_eq!(body.get("cached"), Some(&Json::Bool(true)));
    let phases = body.get("phases").expect("warm profiled frame has phases");
    assert!(phases.get("lru_probe_us").is_some(), "{phases}");
    assert!(
        phases.get("explore_us").is_none(),
        "a cache hit never explores: {phases}"
    );

    // Without profile: true, the frame has no phases field at all (the wire
    // bytes stay exactly as before the telemetry work).
    let plain = client
        .verify(spec, VerifyOptions::default())
        .expect("plain verify");
    assert!(plain.cached);
    let id = client
        .submit_verify(spec, VerifyOptions::default())
        .unwrap();
    let response = client.recv().expect("plain response");
    assert_eq!(response.id, Some(id));
    assert!(response.body.get("phases").is_none());

    client.shutdown_server().expect("shutdown");
    handle.join();
}

//! Chaos tests: the daemon under deterministic fault injection.
//!
//! Every test builds a seeded [`FaultPlan`] — whether the *n*-th pass
//! through a fault point fires is a pure function of `(seed, point, n)`, no
//! clocks, no randomness — so each test first *predicts* the exact fault
//! pattern with [`FaultPlan::decide`] and then asserts the daemon's
//! behaviour request by request. The acceptance contract, from the fault
//! matrix of the resilience work:
//!
//! * the daemon **stays up** under every seeded fault point;
//! * every *successful* answer is **byte-identical** to a fault-free run
//!   (the `report` object renders deterministically);
//! * shed and retried requests **converge** — typed `overloaded` /
//!   `internal-error` / `deadline-exceeded` replies, never silent drops.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use serve::{
    Client, ClientError, Endpoints, ErrorKind, FaultAction, FaultPlan, FaultPoint, RetryPolicy,
    Server, ServerConfig, ServerHandle, StoreTier, VerifyOptions,
};
use wire::Json;

const MAX_STATES: usize = 60_000;

/// A small mixed workload with distinct cache keys.
fn specs() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "int-loop",
            "env a : cio[int]\ntype i[a, Pi(v: int) nil]\ncheck deadlock_free [a]\n",
        ),
        (
            "str-loop",
            "env b : cio[str]\ntype i[b, Pi(s: str) nil]\ncheck deadlock_free [b]\n",
        ),
        (
            "ring-pair",
            "def Token = ()\n\
             env a : cio[Token]\n\
             env b : cio[Token]\n\
             type p[ rec r . i[a, Pi(t: Token) o[b, Token, Pi() r]],\n\
             rec s . i[b, Pi(t: Token) o[a, Token, Pi() s]] ]\n\
             check deadlock_free []\n",
        ),
    ]
}

fn config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        jobs: 2,
        default_max_states: MAX_STATES,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::start(
        &Endpoints {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
        },
        config,
    )
    .expect("start server");
    let addr = handle.tcp_addr().expect("tcp endpoint").to_string();
    (handle, addr)
}

/// Renders a `report` object with every `duration_ms` zeroed: everything a
/// verification *decides* (verdicts, states, transitions, stable line,
/// property provenance, ordering) byte-for-byte, with only the wall-clock
/// timings — which differ between any two runs, faults or not — masked out.
fn canonical_report(report: &Json) -> String {
    fn mask(json: &mut Json) {
        match json {
            Json::Obj(map) => {
                for (key, value) in map.iter_mut() {
                    if key == "duration_ms" {
                        *value = Json::Num(0.0);
                    } else {
                        mask(value);
                    }
                }
            }
            Json::Arr(items) => items.iter_mut().for_each(mask),
            _ => {}
        }
    }
    let mut report = report.clone();
    mask(&mut report);
    report.to_string()
}

/// Verifies `spec` and returns the response's `report` in the canonical
/// rendering of [`canonical_report`] (`wire::Json` renders deterministically,
/// so two runs deciding the same answer produce identical bytes).
fn report_bytes(client: &mut Client, spec: &str) -> Result<String, ClientError> {
    let id = client.submit_verify(spec, VerifyOptions::default())?;
    loop {
        let response = client.recv()?;
        if response.id == Some(id) {
            let body = response.into_ok()?;
            return Ok(canonical_report(
                body.get("report").expect("verify body has report"),
            ));
        }
    }
}

/// The fault-free answers the chaos runs must reproduce byte-for-byte.
fn fault_free_baseline(specs: &[(&str, &str)]) -> Vec<String> {
    let (handle, addr) = start(config());
    let mut client = Client::connect_tcp(&addr).expect("connect baseline client");
    let baseline = specs
        .iter()
        .map(|(name, text)| {
            report_bytes(&mut client, text)
                .unwrap_or_else(|e| panic!("baseline verify of {name}: {e}"))
        })
        .collect();
    handle.shutdown();
    baseline
}

fn stat(stats: &Json, section: &str, field: &str) -> u64 {
    stats
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats.{section}.{field} missing in {stats}")) as u64
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("effpi-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_read_faults_degrade_to_cold_runs_not_outages() {
    let dir = temp_dir("read");
    let specs = specs();
    let baseline = fault_free_baseline(&specs);

    // Generation 1, fault-free: populate the persistent tier.
    {
        let (handle, addr) = start(ServerConfig {
            store: Some(StoreTier::at(&dir)),
            ..config()
        });
        let mut client = Client::connect_tcp(&addr).expect("connect");
        for (i, (_, text)) in specs.iter().enumerate() {
            assert_eq!(
                report_bytes(&mut client, text).expect("populate"),
                baseline[i]
            );
        }
        handle.shutdown();
    }

    // Generation 2: every other disk probe fails. Predict exactly which.
    let plan = FaultPlan::single(0xC0FFEE, FaultPoint::StoreRead, FaultAction::Error, 2);
    let predicted_errors = (0..specs.len() as u64)
        .filter(|&n| plan.decide(FaultPoint::StoreRead, n) == Some(FaultAction::Error))
        .count() as u64;
    assert!(
        predicted_errors > 0 && predicted_errors < specs.len() as u64,
        "seed must exercise both the faulted and the clean path \
         ({predicted_errors}/{} probes fail)",
        specs.len()
    );
    let (handle, addr) = start(ServerConfig {
        store: Some(StoreTier::at(&dir)),
        faults: plan,
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    // Every first encounter probes the disk: a clean probe is a disk hit, a
    // faulted one degrades to a cold re-verification — the answer bytes are
    // identical either way.
    for (i, (_, text)) in specs.iter().enumerate() {
        assert_eq!(
            report_bytes(&mut client, text).expect("serve under read faults"),
            baseline[i]
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stat(&stats, "store", "errors"),
        predicted_errors,
        "exactly the predicted probes failed: {stats}"
    );
    // The daemon is healthy and the second pass (memory-cached now) still
    // replays the same bytes.
    client.ping().expect("ping under read faults");
    for (i, (_, text)) in specs.iter().enumerate() {
        assert_eq!(
            report_bytes(&mut client, text).expect("warm pass"),
            baseline[i]
        );
    }
    handle.shutdown();
}

#[test]
fn store_write_faults_leave_the_daemon_serving_memory_only() {
    let dir = temp_dir("write");
    let specs = specs();
    let baseline = fault_free_baseline(&specs);

    // Every write-through to the persistent tier fails.
    let plan = FaultPlan::single(1, FaultPoint::StoreWrite, FaultAction::Error, 1);
    let (handle, addr) = start(ServerConfig {
        store: Some(StoreTier::at(&dir)),
        faults: plan,
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    for (i, (_, text)) in specs.iter().enumerate() {
        assert_eq!(
            report_bytes(&mut client, text).expect("serve under write faults"),
            baseline[i]
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "store", "errors"), specs.len() as u64);
    assert_eq!(stat(&stats, "store", "entries"), 0, "nothing was persisted");
    // The memory tier still answers — same bytes, now cached.
    for (i, (_, text)) in specs.iter().enumerate() {
        assert_eq!(
            report_bytes(&mut client, text).expect("memory-only pass"),
            baseline[i]
        );
    }
    handle.shutdown();
}

#[test]
fn socket_write_delays_only_slow_the_wire_never_corrupt_it() {
    let specs = specs();
    let baseline = fault_free_baseline(&specs);
    let plan = FaultPlan::single(2, FaultPoint::SocketWrite, FaultAction::Delay { ms: 40 }, 2);
    let (handle, addr) = start(ServerConfig {
        faults: plan,
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    for (i, (_, text)) in specs.iter().enumerate() {
        assert_eq!(
            report_bytes(&mut client, text).expect("serve under delays"),
            baseline[i]
        );
    }
    client.ping().expect("ping under delays");
    handle.shutdown();
}

#[test]
fn socket_write_errors_kill_connections_and_retrying_clients_converge() {
    let specs = specs();
    let baseline = fault_free_baseline(&specs);
    // One in three response writes tears the connection down (the injected
    // error fires *before* the frame is written: the reply is lost whole,
    // never half-sent).
    let plan = FaultPlan::single(11, FaultPoint::SocketWrite, FaultAction::Error, 3);
    let (handle, addr) = start(ServerConfig {
        faults: plan,
        ..config()
    });

    // Manual convergence loop over raw frames, to assert byte-identity of
    // whichever attempt finally lands.
    let mut client = Client::connect_tcp(&addr).expect("connect");
    for (i, (name, text)) in specs.iter().enumerate() {
        let mut tries = 0;
        let bytes = loop {
            match report_bytes(&mut client, text) {
                Ok(bytes) => break bytes,
                Err(ClientError::Io(_)) => {
                    // The connection died with the reply; verification is
                    // idempotent under its content address, so resubmitting
                    // over a fresh connection is safe.
                    tries += 1;
                    assert!(tries < 20, "{name} never converged");
                    client = Client::connect_tcp(&addr).expect("reconnect");
                }
                Err(other) => panic!("{name}: unexpected error {other}"),
            }
        };
        assert_eq!(bytes, baseline[i]);
    }

    // The library client's retry loop does the same dance internally.
    let mut retrying = Client::connect_tcp(&addr).expect("connect retrying");
    retrying.set_sleeper(|_| {}); // recorded schedule is tested elsewhere
    let reply = retrying
        .verify_retrying(
            specs[0].1,
            VerifyOptions::default(),
            &RetryPolicy {
                attempts: 16,
                ..RetryPolicy::default()
            },
        )
        .expect("verify_retrying converges over socket faults");
    assert!(reply.report.passed);
    handle.shutdown();
}

#[test]
fn worker_panics_yield_typed_internal_errors_and_the_worker_survives() {
    let specs = specs();
    let baseline = fault_free_baseline(&specs);
    const REQUESTS: usize = 12;
    let plan = FaultPlan::single(18, FaultPoint::Worker, FaultAction::Panic, 3);
    // The worker fault point sits *below* the cache probes, so only cold
    // verifications tick its pass counter. That makes the prediction a
    // little state machine rather than a straight indexing: a panicking
    // request leaves its spec uncached (nothing ran, nothing was inserted),
    // so the spec's next encounter is cold again and ticks; a clean cold
    // run caches its spec, and every later encounter is an LRU hit that
    // never reaches the fault point at all.
    let mut cached = vec![false; specs.len()];
    let mut ticks = 0u64;
    let predicted: Vec<bool> = (0..REQUESTS)
        .map(|i| {
            let spec = i % specs.len();
            if cached[spec] {
                return false; // cache hit: no tick, no panic
            }
            let fires = plan.decide(FaultPoint::Worker, ticks) == Some(FaultAction::Panic);
            ticks += 1;
            if !fires {
                cached[spec] = true;
            }
            fires
        })
        .collect();
    let panics = predicted.iter().filter(|&&p| p).count() as u64;
    assert!(
        panics > 0 && (panics as usize) < REQUESTS,
        "seed must mix panicking and clean requests ({panics}/{REQUESTS} panic)"
    );
    assert!(
        ticks > panics && (ticks as usize) < REQUESTS,
        "seed must exercise a re-cold retry after a panic *and* at least one \
         cache hit that skips the fault point ({ticks} ticks)"
    );

    // One worker ⇒ the worker-point pass counter advances in submission
    // order, so `predicted[i]` is request i's fate.
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        jobs: 1,
        faults: plan,
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    for (i, &panics_now) in predicted.iter().enumerate() {
        let (_, text) = specs[i % specs.len()];
        match report_bytes(&mut client, text) {
            Ok(bytes) => {
                assert!(!panics_now, "request {i} was predicted to panic");
                assert_eq!(bytes, baseline[i % specs.len()]);
            }
            Err(ClientError::Server { kind, message, .. }) => {
                // The satellite contract: a panicking verify is a *typed*
                // reply on a connection that stays usable — the next loop
                // iteration reuses it.
                assert!(panics_now, "request {i} failed unpredicted: {message}");
                assert_eq!(kind, ErrorKind::Internal.as_str(), "{message}");
                assert!(message.contains("panicked"), "{message}");
            }
            Err(other) => panic!("request {i}: unexpected error {other}"),
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "requests", "panics_caught"), panics, "{stats}");
    assert_eq!(stat(&stats, "requests", "failed"), panics, "{stats}");
    client
        .ping()
        .expect("the daemon is healthy after caught panics");
    handle.shutdown();
}

/// A spec whose state space (2^k product states) cannot finish between
/// pickup and the housekeeper's deadline sweep (same construction as the
/// e2e cancellation test).
fn huge_parallel_spec(k: usize) -> String {
    use std::fmt::Write as _;
    let mut spec = String::new();
    for i in 0..k {
        let _ = writeln!(spec, "env a{i} : cio[()]");
    }
    for i in 0..k {
        let _ = writeln!(spec, "visible a{i}");
    }
    let component = |i: usize| format!("rec r{i} . i[a{i}, Pi(t: ()) o[a{i}, (), Pi() r{i}]]");
    let mut ty = component(k - 1);
    for i in (0..k - 1).rev() {
        ty = format!("p[ {}, {ty} ]", component(i));
    }
    let _ = writeln!(spec, "type {ty}");
    spec.push_str("check deadlock_free []\n");
    spec
}

#[test]
fn deadlines_expire_loudly_and_free_the_worker() {
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        jobs: 1,
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    // 2^18 product states under a 1 ms deadline: the housekeeper must abort
    // it (before start or mid-exploration — both are the same typed answer).
    let err = client
        .verify(
            &huge_parallel_spec(18),
            VerifyOptions {
                max_states: Some(500_000),
                deadline_ms: Some(1),
                ..VerifyOptions::default()
            },
        )
        .expect_err("a 1 ms deadline on a huge spec must expire");
    match err {
        ClientError::Server { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::DeadlineExceeded.as_str(), "{message}");
        }
        other => panic!("expected a deadline refusal, got {other}"),
    }
    // The abort freed the only worker; the same connection serves real work.
    let reply = client
        .verify(specs()[0].1, VerifyOptions::default())
        .expect("verify after an expired deadline");
    assert!(reply.report.passed);
    let stats = client.stats().expect("stats");
    assert!(
        stat(&stats, "requests", "deadline_exceeded") >= 1,
        "{stats}"
    );
    handle.shutdown();
}

#[test]
fn sheds_are_typed_and_the_retrying_client_honours_retry_after() {
    // A queue of depth zero sheds every verify: the pure-overload endpoint.
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        jobs: 1,
        max_queue_depth: 0,
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let slept: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&slept);
    client.set_sleeper(move |wait| {
        recorder.lock().unwrap().push(wait.as_millis() as u64);
    });

    let policy = RetryPolicy {
        attempts: 3,
        timeout: None,
        backoff_base_ms: 10,
        backoff_cap_ms: 1_000,
        jitter_seed: 42,
    };
    let err = client
        .verify_retrying(specs()[0].1, VerifyOptions::default(), &policy)
        .expect_err("a zero-depth queue sheds every attempt");
    match err {
        ClientError::Server {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(kind, ErrorKind::Overloaded.as_str());
            // An idle queue hints the minimum backoff.
            assert_eq!(retry_after_ms, Some(25), "retry_after_ms must be usable");
        }
        other => panic!("expected an overloaded refusal, got {other}"),
    }
    // The waits are exactly `max(backoff_ms(attempt), retry_after_ms)` —
    // deterministic because the jitter seed is pinned.
    let expected: Vec<u64> = (0..2).map(|a| policy.backoff_ms(a).max(25)).collect();
    assert_eq!(*slept.lock().unwrap(), expected);

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "requests", "shed"), 3, "one shed per attempt");
    assert_eq!(stat(&stats, "engine", "queue_capacity"), 0);
    client.ping().expect("shedding is not an outage");
    handle.shutdown();
}

#[test]
fn degraded_servers_refuse_large_jobs_but_keep_serving() {
    // A one-node budget is exceeded by any verification: the watchdog must
    // flip the server into degraded mode without any outage.
    let (handle, addr) = start(ServerConfig {
        workers: 1,
        jobs: 1,
        memory_budget: Some(1),
        ..config()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let reply = client
        .verify(specs()[0].1, VerifyOptions::default())
        .expect("verify under a tiny budget");
    assert!(reply.report.passed);

    // The watchdog runs on the poll interval; wait for the flag.
    let started = std::time::Instant::now();
    loop {
        let stats = client.stats().expect("stats");
        if stat(&stats, "engine", "degraded") == 1 {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the watchdog never flipped degraded: {stats}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Degraded: a job asking for *more* than the default state bound is
    // refused with a long, typed backoff…
    let err = client
        .verify(
            specs()[1].1,
            VerifyOptions {
                max_states: Some(MAX_STATES + 1),
                ..VerifyOptions::default()
            },
        )
        .expect_err("degraded servers refuse large jobs");
    match err {
        ClientError::Server {
            kind,
            retry_after_ms,
            ..
        } => {
            assert_eq!(kind, ErrorKind::Overloaded.as_str());
            assert_eq!(retry_after_ms, Some(5_000));
        }
        other => panic!("expected an overloaded refusal, got {other}"),
    }
    // …while normally-sized work keeps flowing (a clean report, whatever
    // the verdict).
    let reply = client
        .verify(specs()[2].1, VerifyOptions::default())
        .expect("normal work still served while degraded");
    assert!(reply.report.error.is_none(), "{:?}", reply.report.error);
    handle.shutdown();
}

//! Warm-restart end-to-end test: the acceptance contract of the persistent
//! verdict tier (`--store`).
//!
//! A daemon verifies a spec with a store configured, shuts down cleanly, and
//! a **new** daemon is started over the same store directory. The restarted
//! daemon's very first encounter of the spec must be a cache hit served from
//! disk: `cached: true` on the wire, the decoded report byte-identical to
//! the cold run, and — the proof that nothing was re-verified — the fresh
//! server's engine must report **zero states explored**.

use std::path::Path;

use serve::{
    CacheConfig, Client, Endpoints, Server, ServerConfig, ServerHandle, StoreTier, VerifyOptions,
};
use wire::Json;

const MAX_STATES: usize = 60_000;

fn start_with_store(dir: &Path) -> (ServerHandle, String) {
    let handle = Server::start(
        &Endpoints {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
        },
        ServerConfig {
            workers: 2,
            jobs: 2,
            cache: CacheConfig::default(),
            default_max_states: MAX_STATES,
            store: Some(StoreTier::at(dir)),
            log_requests: false,
            ..ServerConfig::default()
        },
    )
    .expect("start server with store");
    let addr = handle.tcp_addr().expect("tcp endpoint").to_string();
    (handle, addr)
}

fn stat(stats: &Json, section: &str, field: &str) -> f64 {
    stats
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("stats.{section}.{field} missing in {stats}"))
}

#[test]
fn a_restarted_daemon_is_warm_from_its_first_request() {
    let dir = std::env::temp_dir().join(format!("effpi-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = "env x : cio[int]\n\
                type i[x, Pi(v: int) nil]\n\
                check deadlock_free [x]\n";
    let other = "env y : cio[str]\n\
                 type i[y, Pi(s: str) nil]\n\
                 check deadlock_free [y]\n";

    // Generation 1: cold verification populates both tiers.
    let (cold, cold_stats) = {
        let (handle, addr) = start_with_store(&dir);
        let mut client = Client::connect_tcp(&addr).expect("connect gen-1");
        let cold = client
            .verify(spec, VerifyOptions::default())
            .expect("cold run");
        assert!(!cold.cached, "an empty store cannot produce a hit");
        let stats = client.stats().expect("gen-1 stats");
        assert_eq!(stat(&stats, "store", "insertions"), 1.0, "{stats}");
        client.shutdown_server().expect("graceful shutdown");
        handle.join();
        (cold, stats)
    };
    assert!(stat(&cold_stats, "engine", "states_explored") > 0.0);

    // Generation 2: a brand-new server over the same directory. Its first
    // request must be answered from disk — cached, byte-identical, and with
    // the engine never having explored a single state.
    let (handle, addr) = start_with_store(&dir);
    let mut client = Client::connect_tcp(&addr).expect("connect gen-2");
    let warm = client
        .verify(spec, VerifyOptions::default())
        .expect("warm run");
    assert!(warm.cached, "restart must be warm from request one");
    assert_eq!(warm.key, cold.key);
    assert_eq!(warm.report, cold.report, "replay must be byte-identical");

    let stats = client.stats().expect("gen-2 stats");
    assert_eq!(
        stat(&stats, "engine", "states_explored"),
        0.0,
        "a disk hit must not re-verify: {stats}"
    );
    assert!(stat(&stats, "cache", "disk_hits") >= 1.0, "{stats}");
    assert!(stat(&stats, "store", "hits") >= 1.0, "{stats}");
    assert_eq!(stat(&stats, "store", "entries"), 1.0, "{stats}");

    // A disk hit is promoted into the LRU: the next encounter is a memory
    // hit, not a second disk read.
    let disk_hits_before = stat(&stats, "cache", "disk_hits");
    let again = client
        .verify(spec, VerifyOptions::default())
        .expect("third run");
    assert!(again.cached);
    assert_eq!(again.report, cold.report);
    let stats = client.stats().expect("gen-2 stats after promote");
    assert_eq!(stat(&stats, "cache", "disk_hits"), disk_hits_before);
    assert!(stat(&stats, "cache", "hits") >= 1.0);

    // A spec the store has never seen still verifies cold — and lands in the
    // store for the *next* generation.
    let fresh = client
        .verify(other, VerifyOptions::default())
        .expect("fresh spec");
    assert!(!fresh.cached);
    let stats = client.stats().expect("gen-2 final stats");
    assert_eq!(stat(&stats, "store", "entries"), 2.0, "{stats}");

    client.shutdown_server().expect("graceful shutdown");
    handle.join();

    // Generation 3: both specs are now disk-warm.
    let (handle, addr) = start_with_store(&dir);
    let mut client = Client::connect_tcp(&addr).expect("connect gen-3");
    for text in [spec, other] {
        let reply = client
            .verify(text, VerifyOptions::default())
            .expect("gen-3 run");
        assert!(reply.cached, "every stored verdict must replay");
    }
    let stats = client.stats().expect("gen-3 stats");
    assert_eq!(stat(&stats, "engine", "states_explored"), 0.0, "{stats}");
    client.shutdown_server().expect("graceful shutdown");
    handle.join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_server_without_a_store_reports_a_null_store_section() {
    let handle = Server::start(
        &Endpoints {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
        },
        ServerConfig::default(),
    )
    .expect("start storeless server");
    let addr = handle.tcp_addr().expect("tcp endpoint").to_string();
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.get("store"),
        Some(&Json::Null),
        "no store configured must render as null, got {stats}"
    );
    client.shutdown_server().expect("graceful shutdown");
    handle.join();
}

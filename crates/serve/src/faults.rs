//! Deterministic fault injection for the serve stack.
//!
//! A [`FaultPlan`] is a *seeded, timing-independent* schedule of failures at
//! the four places the daemon touches something that can break in
//! production: reading the persistent store, writing it, writing a response
//! to a socket, and the worker boundary around a verification itself. The
//! plan lives in `ServerConfig` (an empty plan — the default — injects
//! nothing and costs one `Vec::is_empty` check per site), so parallel test
//! servers in one process never contaminate each other through global state.
//!
//! Determinism is the whole point: whether the *n*-th pass through a point
//! fires is a pure function of `(seed, point, n)` — a hash, not a clock or
//! a random source — so a chaos test can **predict** the exact fault
//! pattern with [`FaultPlan::decide`] and assert per-request outcomes, and
//! a failing seed replays identically under a debugger. This extends the
//! discipline of the store crate's byte-level recovery fuzz (every
//! truncation, every bit flip, exhaustively) from one file format to the
//! whole request path.
//!
//! What each action means is decided by the injection *site* (see
//! `server.rs`): `Error` degrades the operation the way a real I/O failure
//! would, `Delay` sleeps before it, `Panic` panics — exercising the
//! worker's `catch_unwind` isolation. Injection decisions are made **while
//! no lock is held**, so an injected panic can never poison a mutex that
//! outlives it.

use std::fmt;

/// Where in the request path a fault fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPoint {
    /// Probing the persistent tier for a verdict.
    StoreRead,
    /// Writing a cold verdict through to the persistent tier.
    StoreWrite,
    /// Writing a response frame to a client socket.
    SocketWrite,
    /// The worker boundary, just before a *cold* verification runs. The
    /// point sits below both cache probes, so a request answered from the
    /// LRU or the disk tier never passes through it (and never advances its
    /// pass counter) — it models the engine failing, and hits run no engine.
    Worker,
}

impl FaultPoint {
    /// A stable per-point tag mixed into the selection hash, so two points
    /// under one seed fire on different passes.
    fn tag(self) -> u64 {
        match self {
            FaultPoint::StoreRead => 0x5354_4f52_4552_4421, // "STORERD!"
            FaultPoint::StoreWrite => 0x5354_4f52_4557_5221, // "STOREWR!"
            FaultPoint::SocketWrite => 0x534f_434b_5745_5221, // "SOCKWER!"
            FaultPoint::Worker => 0x574f_524b_4552_2121,    // "WORKER!!"
        }
    }

    /// The wire/debug spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultPoint::StoreRead => "store-read",
            FaultPoint::StoreWrite => "store-write",
            FaultPoint::SocketWrite => "socket-write",
            FaultPoint::Worker => "worker",
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happens when a fault fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The operation fails the way a real I/O error would (the site
    /// degrades exactly as it does for genuine failures).
    Error,
    /// The operation is delayed by `ms` milliseconds first.
    Delay {
        /// The stall, milliseconds.
        ms: u64,
    },
    /// The thread panics (at the `SocketWrite` point this is downgraded to
    /// [`FaultAction::Error`] — a send runs on reader *and* worker threads,
    /// and only workers carry panic isolation).
    Panic,
}

/// One scheduled failure mode at one point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultRule {
    /// Where it fires.
    pub point: FaultPoint,
    /// What it does.
    pub action: FaultAction,
    /// Fires on roughly one in `one_in` passes through the point, selected
    /// by the seeded hash (`0` and `1` both mean *every* pass).
    pub one_in: u64,
}

/// A seeded, deterministic fault schedule (empty by default: no injection).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// The seed every firing decision hashes in.
    pub seed: u64,
    /// The scheduled failure modes; the first matching rule per point wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan firing `action` at `point` on one in `one_in` passes.
    pub fn single(seed: u64, point: FaultPoint, action: FaultAction, one_in: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: vec![FaultRule {
                point,
                action,
                one_in,
            }],
        }
    }

    /// Whether the plan injects nothing (the hot-path fast check).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether (and how) the `n`-th pass through `point` fails — a pure
    /// function of `(seed, point, n)`, so tests predict the exact pattern
    /// the server will execute.
    pub fn decide(&self, point: FaultPoint, n: u64) -> Option<FaultAction> {
        self.rules.iter().find_map(|rule| {
            if rule.point != point {
                return None;
            }
            let fires = rule.one_in <= 1
                || splitmix64(self.seed ^ point.tag() ^ n).is_multiple_of(rule.one_in);
            fires.then_some(rule.action)
        })
    }
}

/// SplitMix64 — the same dependency-free mixing function the exploration
/// engine's seeded random walk uses. Full-avalanche: every input bit flips
/// each output bit with probability ~1/2, which is what makes `one_in`
/// selection unbiased across consecutive pass counters.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plans_never_fire() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for n in 0..64 {
            assert_eq!(plan.decide(FaultPoint::Worker, n), None);
        }
    }

    #[test]
    fn one_in_one_fires_every_pass() {
        let plan = FaultPlan::single(7, FaultPoint::StoreRead, FaultAction::Error, 1);
        for n in 0..64 {
            assert_eq!(
                plan.decide(FaultPoint::StoreRead, n),
                Some(FaultAction::Error)
            );
            assert_eq!(
                plan.decide(FaultPoint::StoreWrite, n),
                None,
                "other points clean"
            );
        }
    }

    #[test]
    fn selection_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::single(1, FaultPoint::Worker, FaultAction::Panic, 2);
        let b = FaultPlan::single(2, FaultPoint::Worker, FaultAction::Panic, 2);
        let pattern = |plan: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|n| plan.decide(FaultPoint::Worker, n).is_some())
                .collect()
        };
        // Same plan, same pattern — always.
        assert_eq!(pattern(&a), pattern(&a));
        // Different seeds diverge, and a one-in-two rule fires a non-trivial,
        // non-total subset.
        assert_ne!(pattern(&a), pattern(&b));
        let fired = pattern(&a).iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 256, "one_in=2 fired {fired}/256");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan {
            seed: 3,
            rules: vec![
                FaultRule {
                    point: FaultPoint::Worker,
                    action: FaultAction::Delay { ms: 5 },
                    one_in: 1,
                },
                FaultRule {
                    point: FaultPoint::Worker,
                    action: FaultAction::Panic,
                    one_in: 1,
                },
            ],
        };
        assert_eq!(
            plan.decide(FaultPoint::Worker, 0),
            Some(FaultAction::Delay { ms: 5 })
        );
    }
}

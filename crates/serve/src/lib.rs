//! **effpi-serve** — a concurrent verification service in front of the
//! [`effpi::Session`] pipeline, with a content-addressed verdict cache.
//!
//! The paper's workflow (§5.1) runs one verification per compiler
//! invocation; this crate is the step beyond the one-shot CLI: a
//! long-running daemon that accepts `.effpi` spec texts over a
//! line-delimited JSON protocol (TCP and/or a Unix socket), multiplexes
//! concurrent clients over a fixed worker pool sharing the parallel
//! exploration engine, and memoises verdicts under the stable content
//! address of the *normalised* request (`effpi::fingerprint`) — so
//! semantically identical specs, however they are spelled, verify once.
//! An optional persistent second tier (the `store` crate's crash-safe
//! record log, enabled per-server via [`StoreTier`]) makes a restarted
//! daemon warm from its first request.
//!
//! | module | role |
//! |---|---|
//! | [`protocol`] | frame grammar: requests, responses, [`WireReport`] |
//! | [`cache`] | the bounded LRU [`VerdictCache`] |
//! | [`server`] | accept loops, worker pool, cancellation, shutdown |
//! | [`client`] | a blocking client library with deadline-aware retries |
//! | [`faults`] | seeded, deterministic fault injection for chaos drills |
//!
//! The full wire contract lives in `crates/serve/PROTOCOL.md`; the
//! `effpi-cli` binary (`crates/cli`) wraps both ends as the `serve` and
//! `client` subcommands.
//!
//! ```no_run
//! use serve::{Client, Endpoints, Server, ServerConfig, VerifyOptions};
//!
//! let handle = Server::start(
//!     &Endpoints { tcp: Some("127.0.0.1:0".into()), unix: None },
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let addr = handle.tcp_addr().unwrap().to_string();
//!
//! let mut client = Client::connect_tcp(&addr).unwrap();
//! let reply = client
//!     .verify(
//!         "env x : cio[int]\ntype i[x, Pi(v: int) nil]\ncheck deadlock_free [x]",
//!         VerifyOptions::default(),
//!     )
//!     .unwrap();
//! assert!(reply.report.passed);
//!
//! client.shutdown_server().unwrap();
//! handle.join();
//! ```
//!
//! Everything is `std` + the workspace's own crates — no external
//! dependencies, consistent with the offline build environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod faults;
pub mod protocol;
pub mod server;

pub use cache::{CacheConfig, CacheStats, VerdictCache};
pub use client::{Client, ClientError, Response, RetryPolicy, VerifyReply};
pub use faults::{FaultAction, FaultPlan, FaultPoint, FaultRule};
pub use protocol::{ErrorKind, MetricsFormat, Request, VerifyOptions, WireReport};
pub use server::{Endpoints, Server, ServerConfig, ServerHandle, StoreTier, STATS_SCHEMA};

//! The `effpi-serve` daemon: accept loops, connection readers, and the
//! verification worker pool.
//!
//! ## Architecture
//!
//! ```text
//!  TCP / Unix acceptor ──► one reader thread per connection
//!                               │  (parses frames; answers stats/cancel/
//!                               │   ping/shutdown inline)
//!                               ▼
//!                      shared FIFO job queue  ◄─── cancellation flags
//!                               │
//!                    fixed pool of W workers, each running the
//!                    Session pipeline with ⌊jobs / W⌋ exploration
//!                    threads (the global --jobs budget, split)
//!                               │
//!                     content-addressed VerdictCache
//!                               │
//!                     response line ──► connection writer
//! ```
//!
//! Responses are written by whichever thread produced them (reader for
//! inline ops, worker for verdicts) under the connection's writer lock, so
//! a client may pipeline requests and receive answers out of order, matched
//! by `id`.
//!
//! ## Shutdown
//!
//! Graceful, in three steps: stop accepting (acceptors exit, readers stop
//! taking frames), **drain** — every already-queued job still runs and its
//! response is still delivered (the writer half of a connection outlives its
//! reader) — then join every thread. Requests arriving during the drain are
//! refused with `error.kind = "shutting-down"`.
//!
//! ## Cancellation
//!
//! `cancel` flips a per-job [`CancelToken`] that reaches all the way into
//! the exploration engine. A request that never started is dropped when a
//! worker dequeues it (its `verify` answers `error.kind = "cancelled"`); one
//! that is already executing is **aborted at its next state expansion** —
//! the engine's cooperative cancel hook (`lts::explore`) stops every
//! exploration worker, the run fails with `VerifyError::Cancelled`, and the
//! `verify` answers `error.kind = "cancelled"` without polluting the verdict
//! cache (an aborted prefix is scheduling-dependent and never cacheable).
//! The `cancel` *response* still reports `cancelled: false` for started
//! jobs — `true` remains the stronger "never ran at all" guarantee.
//!
//! ## Resilience
//!
//! Three independent mechanisms keep one bad request — or a burst of good
//! ones — from taking the daemon down:
//!
//! * **Panic isolation.** Every verification runs under `catch_unwind` at
//!   the worker boundary. A panic anywhere in the engine becomes a typed
//!   `internal-error` response, the worker thread survives, and the event is
//!   counted (`requests.panics_caught`). The shared locks tolerate this by
//!   construction: `runtime::sync::Mutex` recovers poisoned guards, and
//!   fault-injection decisions are made while no lock is held.
//! * **Deadlines.** A `verify` may carry `deadline_ms`; a housekeeper thread
//!   flips the job's [`CancelToken`] when the budget elapses (queued or
//!   executing alike), and the reply is a typed `deadline-exceeded` error.
//! * **Overload protection.** Admission is bounded (`max_queue_depth`):
//!   past it, requests are *shed* with a typed `overloaded` reply carrying a
//!   `retry_after_ms` hint — never silently dropped. Under an optional
//!   memory budget (an interner node-count proxy, since the hash-consing
//!   arenas are append-only) the daemon degrades in a ladder: first it sheds
//!   re-derivable cached verdicts (LRU halving + store compaction), then it
//!   refuses only *larger-than-default* jobs with `overloaded` — small
//!   requests keep being served.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use effpi::spec::parse_spec;
use effpi::{CancelToken, Session};
use runtime::sync::{Condvar, Mutex};
use store::{StoreConfig, VerdictStore};
use wire::Json;

use crate::cache::{CacheConfig, VerdictCache};
use crate::faults::{FaultAction, FaultPlan, FaultPoint};
use crate::protocol::{
    err_response, metrics_response_line, ok_response, overloaded_response, verify_response_line,
    verify_response_line_profiled, ErrorKind, MetricsFormat, Request, VerifyOptions,
};

/// How long a blocked read waits before re-checking the shutdown flag, and
/// how long an idle acceptor sleeps between polls. Bounds shutdown latency;
/// never adds latency to actual traffic.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

type BoxedRead = Box<dyn Read + Send>;
type BoxedWrite = Box<dyn Write + Send>;

/// The persistent second cache tier: where the on-disk verdict store lives
/// and how large it may grow (bounds enforced at compaction — see the
/// `store` crate).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreTier {
    /// The store directory (created if missing; `store.log` lives inside).
    pub path: PathBuf,
    /// Capacity bounds of the on-disk tier.
    pub bounds: StoreConfig,
}

impl StoreTier {
    /// A tier at `path` with the default (disk-sized) bounds.
    pub fn at(path: impl Into<PathBuf>) -> StoreTier {
        StoreTier {
            path: path.into(),
            bounds: StoreConfig::default(),
        }
    }
}

/// Tuning of a [`Server`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServerConfig {
    /// Concurrent verifications (worker threads).
    pub workers: usize,
    /// Global exploration-thread budget, split evenly across the workers:
    /// each in-flight verification explores with `max(1, jobs / workers)`
    /// threads. `jobs = workers` (the default) means serial exploration per
    /// request with `workers`-way request concurrency.
    pub jobs: usize,
    /// Bounds of the in-memory verdict cache (the first tier).
    pub cache: CacheConfig,
    /// State bound for requests that do not override `max_states`.
    pub default_max_states: usize,
    /// Optional crash-safe on-disk verdict store (the second tier): cold
    /// misses populate it write-through, disk hits are promoted into the
    /// LRU, and a restarted daemon is warm from request one.
    pub store: Option<StoreTier>,
    /// When `true`, every answered `verify` writes one structured log line
    /// to stderr: request id, fingerprint, the tier that answered (`lru` /
    /// `disk` / `cold`), the outcome, and the per-phase timing breakdown.
    pub log_requests: bool,
    /// Admission bound: `verify` requests beyond this many *queued* jobs are
    /// shed with a typed `overloaded` reply (carrying `retry_after_ms`)
    /// instead of growing the queue without limit. `0` sheds everything —
    /// useful for drills; in-flight work is not counted against the bound.
    pub max_queue_depth: usize,
    /// Optional memory watchdog budget, in interner nodes (`types + terms`
    /// of `effpi::intern_stats()` — the daemon's dominant append-only
    /// allocation). At 90% the caches shed (LRU halving, store compaction);
    /// at 100% the server turns `degraded` and refuses requests asking for
    /// more than `default_max_states` with `overloaded`. `None` disables the
    /// watchdog.
    pub memory_budget: Option<u64>,
    /// Default per-request exploration memory budget, in bytes: past it, an
    /// exploration's cold frontier segments spill to disk and stream back in
    /// discovery order (see `lts::memory`). A request's own
    /// `options.memory_budget` overrides this default. Orthogonal to
    /// [`ServerConfig::memory_budget`]: the watchdog bounds the process-wide
    /// append-only interner and *sheds*, this knob bounds one exploration's
    /// transient working set and *spills* — reports stay byte-identical, so
    /// it never affects cache keys or verdicts. `None` keeps every frontier
    /// in memory.
    pub explore_memory_budget: Option<usize>,
    /// Deterministic fault injection (tests and chaos drills only; the
    /// default empty plan injects nothing).
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            jobs: 4,
            cache: CacheConfig::default(),
            default_max_states: 500_000,
            store: None,
            log_requests: false,
            max_queue_depth: 256,
            memory_budget: None,
            explore_memory_budget: None,
            faults: FaultPlan::default(),
        }
    }
}

impl ServerConfig {
    fn per_request_jobs(&self) -> usize {
        (self.jobs / self.workers.max(1)).max(1)
    }
}

/// Where a [`Server`] listens. At least one endpoint must be set.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Endpoints {
    /// A TCP bind address, e.g. `"127.0.0.1:7717"` (port `0` for ephemeral).
    pub tcp: Option<String>,
    /// A Unix-domain socket path (refused with an error off Unix).
    pub unix: Option<PathBuf>,
}

/// The verification service. [`Server::start`] spawns the acceptor and
/// worker threads and returns a [`ServerHandle`] to wait on or shut down.
pub struct Server;

impl Server {
    /// Starts the daemon on the given endpoints.
    ///
    /// # Errors
    ///
    /// Returns the bind error, `InvalidInput` when no endpoint is given, or
    /// the store-open error when `config.store` names an unusable path (a
    /// torn log recovers silently; only real I/O failures and foreign-format
    /// files refuse the start).
    pub fn start(endpoints: &Endpoints, config: ServerConfig) -> io::Result<ServerHandle> {
        if endpoints.tcp.is_none() && endpoints.unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no endpoint: set a TCP address and/or a Unix socket path",
            ));
        }
        // Every endpoint is bound *before* any thread is spawned: a failed
        // second bind must not leak a live acceptor (and its port) behind an
        // `Err` return that carries no handle to stop it.
        let mut tcp = None;
        if let Some(addr) = &endpoints.tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp = Some(listener);
        }
        let mut unix_path = None;
        #[cfg(unix)]
        let mut unix = None;
        if let Some(path) = &endpoints.unix {
            #[cfg(unix)]
            {
                // A stale socket file from a crashed daemon would fail the
                // bind — but only a *stale* one may be removed: if a live
                // daemon still answers on the path, starting a second one
                // must fail loudly (AddrInUse), not silently unlink the
                // first daemon's socket and hijack its traffic.
                if path.exists() {
                    if std::os::unix::net::UnixStream::connect(path).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a daemon is already serving on {path:?}"),
                        ));
                    }
                    let _ = std::fs::remove_file(path);
                }
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                unix_path = Some(path.clone());
                unix = Some(listener);
            }
            #[cfg(not(unix))]
            {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("Unix sockets are not available on this platform: {path:?}"),
                ));
            }
        }

        // The store tier opens before any thread spawns, for the same
        // leak-on-error reason as the binds: recovery of a torn log happens
        // here (inside `VerdictStore::open`), so by the time a worker runs,
        // the disk tier is a clean, serveable prefix.
        let disk = match &config.store {
            Some(tier) => Some(Mutex::new(VerdictStore::open(&tier.path, tier.bounds)?)),
            None => None,
        };

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared::new(config, disk));
        let mut threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(listener) = tcp {
            tcp_addr = Some(listener.local_addr()?);
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || accept_loop(&shared, &listener)));
        }
        #[cfg(unix)]
        if let Some(listener) = unix {
            let shared = Arc::clone(&shared);
            threads.push(thread::spawn(move || accept_loop(&shared, &listener)));
        }

        for worker in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("effpi-serve-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread"),
            );
        }

        // The housekeeper owns the time-driven duties no request thread
        // should block on: expiring deadlines and watching memory pressure.
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("effpi-serve-housekeeper".to_string())
                    .spawn(move || housekeeper_loop(&shared))
                    .expect("spawn housekeeper thread"),
            );
        }

        Ok(ServerHandle {
            shared,
            threads,
            tcp_addr,
            unix_path,
        })
    }
}

/// A running server: the way to learn its ephemeral address, wait for a
/// client-initiated `shutdown`, or shut it down from the owning thread.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (useful with port `0`).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Initiates a graceful shutdown and waits for every thread: in-flight
    /// and already-queued requests complete and their responses flush first.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.finish();
    }

    /// Blocks until some client sends a `shutdown` request (or another
    /// thread of this process calls [`ServerHandle::shutdown`] — but this
    /// method consumes the handle, so in-process that means waiting), then
    /// completes the same graceful drain.
    pub fn join(self) {
        {
            let mut down = self.shared.down.lock();
            while !*down {
                down = self.shared.down_cv.wait(down);
            }
        }
        self.finish();
    }

    fn finish(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
        loop {
            let Some(reader) = self.shared.readers.lock().pop() else {
                break;
            };
            let _ = reader.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

struct JobFlags {
    /// The cooperative cancellation hook, shared with the `Session` that
    /// runs the job: flipping it aborts an in-flight exploration.
    cancel: CancelToken,
    started: AtomicBool,
    /// Set by the housekeeper when the job's `deadline_ms` elapsed: the
    /// cancel token was flipped *because of the deadline*, so the refusal
    /// must say `deadline-exceeded`, not `cancelled`.
    deadline_exceeded: AtomicBool,
    /// Set once the job's response is sent; lets the housekeeper drop its
    /// deadline watch without racing the worker.
    finished: AtomicBool,
}

impl JobFlags {
    fn new() -> JobFlags {
        JobFlags {
            cancel: CancelToken::new(),
            started: AtomicBool::new(false),
            deadline_exceeded: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        }
    }
}

struct Job {
    conn: Arc<Conn>,
    id: u64,
    flags: Arc<JobFlags>,
    spec: String,
    options: VerifyOptions,
    /// The absolute expiry of the request's `deadline_ms`, fixed at
    /// admission (queue wait counts against the budget).
    deadline: Option<Instant>,
}

/// The live half of a [`FaultPlan`]: per-point pass counters, so the *n*-th
/// pass through each point is a well-defined, test-predictable index.
struct FaultHook {
    plan: FaultPlan,
    store_read: AtomicU64,
    store_write: AtomicU64,
    socket_write: AtomicU64,
    worker: AtomicU64,
}

impl FaultHook {
    fn new(plan: FaultPlan) -> Option<Arc<FaultHook>> {
        if plan.is_empty() {
            return None;
        }
        Some(Arc::new(FaultHook {
            plan,
            store_read: AtomicU64::new(0),
            store_write: AtomicU64::new(0),
            socket_write: AtomicU64::new(0),
            worker: AtomicU64::new(0),
        }))
    }

    /// Counts one pass through `point` and reports whether it fails.
    fn inject(&self, point: FaultPoint) -> Option<FaultAction> {
        let counter = match point {
            FaultPoint::StoreRead => &self.store_read,
            FaultPoint::StoreWrite => &self.store_write,
            FaultPoint::SocketWrite => &self.socket_write,
            FaultPoint::Worker => &self.worker,
        };
        let n = counter.fetch_add(1, Ordering::SeqCst);
        self.plan.decide(point, n)
    }
}

/// One client connection: the response writer and the cancellation registry
/// of its not-yet-completed `verify` requests.
struct Conn {
    writer: Mutex<BoxedWrite>,
    pending: Mutex<HashMap<u64, Arc<JobFlags>>>,
    /// Set on the first write failure (client vanished, or a write timeout
    /// cut a response mid-frame). A partially written frame desynchronises
    /// the line protocol, so nothing more may be sent on this connection —
    /// and the reader drops it, which closes the socket and lets the client
    /// observe a clean EOF instead of merged half-frames.
    dead: AtomicBool,
    /// The server's fault hook (`None` outside chaos drills): `send` is the
    /// socket-write injection point, and it runs on reader *and* worker
    /// threads, so the hook travels with the connection.
    faults: Option<Arc<FaultHook>>,
}

impl Conn {
    fn send(&self, line: &str) {
        // Injection decides before the writer lock is taken, and `Panic` is
        // downgraded to `Error`: reader threads carry no panic isolation, and
        // a real failed write severs the connection exactly like this.
        if let Some(hook) = &self.faults {
            match hook.inject(FaultPoint::SocketWrite) {
                None => {}
                Some(FaultAction::Delay { ms }) => thread::sleep(Duration::from_millis(ms)),
                Some(FaultAction::Error | FaultAction::Panic) => {
                    self.dead.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
        let mut writer = self.writer.lock();
        if self.dead.load(Ordering::SeqCst) {
            return;
        }
        let ok = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if ok.is_err() {
            self.dead.store(true, Ordering::SeqCst);
        }
    }

    /// Removes `id` from the pending registry **only** if it still belongs
    /// to this job: a client that reuses an in-flight id overwrites the
    /// entry with the newer job's flags, and the older job's completion must
    /// not delete the newer job's cancellation handle.
    fn settle(&self, id: u64, flags: &Arc<JobFlags>) {
        let mut pending = self.pending.lock();
        if pending.get(&id).is_some_and(|f| Arc::ptr_eq(f, flags)) {
            pending.remove(&id);
        }
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    in_flight: AtomicUsize,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    states_explored: AtomicU64,
    /// Disk-tier probes answered from `store.log` (each one also promoted
    /// the verdict into the LRU).
    disk_hits: AtomicU64,
    /// Disk-tier reads/writes that failed with an I/O error. The store is a
    /// cache: errors degrade to cold verification, never to a refused
    /// request — but they are accounted here so an operator can see a dying
    /// disk in `stats`.
    store_errors: AtomicU64,
    /// Requests refused with a typed `overloaded` reply (queue full, or
    /// degraded-mode large-job refusals). Every shed is an *answered*
    /// request — never a silent drop — so this equals the overloaded replies
    /// clients observed.
    shed: AtomicU64,
    /// Requests refused with `deadline-exceeded` (their `deadline_ms`
    /// elapsed while queued or executing).
    deadline_exceeded: AtomicU64,
    /// Verifications that panicked and were absorbed at the worker boundary
    /// (each one answered `internal-error`; the worker survived).
    panics_caught: AtomicU64,
}

struct Shared {
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    cache: Mutex<VerdictCache>,
    /// The persistent second tier, when `config.store` is set. Its mutex is
    /// **never held together with the LRU's**: the tiering protocol is
    /// probe-LRU → probe-disk → (verify) → fill-LRU → fill-disk, each step
    /// under its own lock, so slow disk I/O never serialises memory hits.
    store: Option<Mutex<VerdictStore>>,
    shutdown: AtomicBool,
    down: Mutex<bool>,
    down_cv: Condvar,
    readers: Mutex<Vec<thread::JoinHandle<()>>>,
    counters: Counters,
    /// The live fault-injection hook (`None` when `config.faults` is empty).
    faults: Option<Arc<FaultHook>>,
    /// Deadline watch list: `(expiry, flags)` of admitted jobs that carry a
    /// `deadline_ms`, swept by the housekeeper every poll interval.
    deadlines: Mutex<Vec<(Instant, Arc<JobFlags>)>>,
    /// Sticky memory-pressure mode: once the interner crosses the budget,
    /// larger-than-default jobs are refused (the arenas are append-only, so
    /// there is no way back down short of a restart).
    degraded: AtomicBool,
}

impl Shared {
    fn new(config: ServerConfig, store: Option<Mutex<VerdictStore>>) -> Shared {
        let cache = Mutex::new(VerdictCache::new(config.cache));
        let faults = FaultHook::new(config.faults.clone());
        Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            cache,
            store,
            shutdown: AtomicBool::new(false),
            down: Mutex::new(false),
            down_cv: Condvar::new(),
            readers: Mutex::new(Vec::new()),
            counters: Counters::default(),
            faults,
            deadlines: Mutex::new(Vec::new()),
            degraded: AtomicBool::new(false),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// How soon a shed client should come back: the queue's expected drain
    /// time at one verification per `POLL_INTERVAL`-ish slot per worker,
    /// clamped to a sane band. Deterministic (no clock, no randomness), so
    /// chaos tests can pin it.
    fn retry_after_hint(&self, queued: usize) -> u64 {
        let workers = self.config.workers.max(1);
        (((queued / workers) as u64 + 1) * 25).clamp(25, 1_000)
    }

    fn begin_shutdown(&self) {
        // The flag flips *under the queue lock*: workers check it under the
        // same lock between their empty-pop and their cv wait, so the
        // notification below can never slip into that window and be missed
        // (the classic lost-wakeup), and readers enqueueing under the lock
        // see a consistent accept-or-refuse decision (no job can be pushed
        // after the workers were told to drain-and-exit).
        {
            let _queue = self.queue.lock();
            self.shutdown.store(true, Ordering::SeqCst);
        }
        // Wake every parked worker so the drain can finish...
        self.work_cv.notify_all();
        // ...and whoever is blocked in ServerHandle::join.
        *self.down.lock() = true;
        self.down_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Accepting connections
// ---------------------------------------------------------------------------

/// One listener kind: yields ready connections, `None` when none is pending.
trait Acceptor {
    fn poll_accept(&self) -> io::Result<Option<(BoxedRead, BoxedWrite)>>;
}

impl Acceptor for TcpListener {
    fn poll_accept(&self) -> io::Result<Option<(BoxedRead, BoxedWrite)>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(split_stream(stream, TcpStream::try_clone)?)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(unix)]
impl Acceptor for std::os::unix::net::UnixListener {
    fn poll_accept(&self) -> io::Result<Option<(BoxedRead, BoxedWrite)>> {
        use std::os::unix::net::UnixStream;
        match self.accept() {
            Ok((stream, _)) => Ok(Some(split_stream(stream, UnixStream::try_clone)?)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// How long a blocked response write may stall before it is abandoned. A
/// client that stops reading (full socket buffer) must not wedge the worker
/// delivering its verdict — and with it, every worker that later queues on
/// the same connection's writer lock — indefinitely; after the timeout the
/// write fails, the response is dropped, and the worker moves on.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Configures a freshly accepted stream (blocking reads with a short timeout
/// so readers can observe shutdown; bounded writes so a non-reading client
/// cannot wedge the worker pool) and splits it into its two halves.
fn split_stream<S, F>(stream: S, try_clone: F) -> io::Result<(BoxedRead, BoxedWrite)>
where
    S: Read + Write + Send + SetTimeouts + 'static,
    F: Fn(&S) -> io::Result<S>,
{
    stream.set_blocking_with_timeouts(POLL_INTERVAL, WRITE_TIMEOUT)?;
    let writer = try_clone(&stream)?;
    Ok((Box::new(stream), Box::new(writer)))
}

/// The socket knobs `split_stream` needs, unified across stream kinds.
trait SetTimeouts {
    fn set_blocking_with_timeouts(&self, read: Duration, write: Duration) -> io::Result<()>;
}

impl SetTimeouts for TcpStream {
    fn set_blocking_with_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }
}

#[cfg(unix)]
impl SetTimeouts for std::os::unix::net::UnixStream {
    fn set_blocking_with_timeouts(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }
}

fn accept_loop<L: Acceptor>(shared: &Arc<Shared>, listener: &L) {
    while !shared.shutting_down() {
        match listener.poll_accept() {
            Ok(Some((reader, writer))) => {
                shared.counters.connections.fetch_add(1, Ordering::SeqCst);
                let conn = Arc::new(Conn {
                    writer: Mutex::new(writer),
                    pending: Mutex::new(HashMap::new()),
                    dead: AtomicBool::new(false),
                    faults: shared.faults.clone(),
                });
                let shared_for_reader = Arc::clone(shared);
                let handle = thread::spawn(move || reader_loop(&shared_for_reader, reader, &conn));
                // Reap finished readers as new connections arrive: a
                // long-running daemon must not grow its handle list with its
                // total (not concurrent) connection count.
                let mut readers = shared.readers.lock();
                let mut i = 0;
                while i < readers.len() {
                    if readers[i].is_finished() {
                        let _ = readers.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                readers.push(handle);
            }
            Ok(None) | Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

// ---------------------------------------------------------------------------
// Reading requests
// ---------------------------------------------------------------------------

/// The largest request line a connection may send. Far beyond any real spec
/// (the shipped ones are under a kilobyte), but a hard wall against a client
/// streaming an endless newline-free "frame" into server memory.
const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Reads frames with `fill_buf`/`consume` rather than `read_line`: the
/// accumulated frame is checked against [`MAX_FRAME_BYTES`] *between buffer
/// refills* (growth per iteration is one `BufReader` buffer), so a client
/// streaming an endless newline-free line is cut off instead of exhausting
/// server memory — `read_line` would only return (and let us check) at the
/// newline that never comes. Bytes are accumulated raw and UTF-8-validated
/// once per complete frame, so multi-byte characters split across refills
/// (µ, Π in spec texts) survive intact.
/// How long a reader keeps consuming frames after shutdown began, so that
/// requests already in flight from the client get their typed
/// `shutting-down` refusal instead of a silent EOF. Bounded, so a client
/// that keeps frames flowing cannot postpone the shutdown indefinitely.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

fn reader_loop(shared: &Arc<Shared>, reader: BoxedRead, conn: &Arc<Conn>) {
    let mut reader = BufReader::new(reader);
    let mut frame: Vec<u8> = Vec::new();
    let mut drain_deadline: Option<std::time::Instant> = None;
    loop {
        // A poisoned writer (vanished client, or a timed-out mid-frame
        // write) means no response can ever be delivered again: drop the
        // connection so the client sees a clean EOF.
        if conn.dead.load(Ordering::SeqCst) {
            break;
        }
        // Responses to already accepted work are delivered by the workers
        // through the writer half, which outlives this reader; the grace
        // window only governs how long refusals keep flowing.
        if shared.shutting_down() {
            let deadline =
                *drain_deadline.get_or_insert_with(|| std::time::Instant::now() + DRAIN_GRACE);
            if std::time::Instant::now() >= deadline {
                break;
            }
        }
        if frame.len() > MAX_FRAME_BYTES {
            // The rest of the stream could only be more of the same frame:
            // answer once and drop the connection.
            conn.send(&err_response(
                None,
                ErrorKind::Protocol,
                &format!("request line exceeds {MAX_FRAME_BYTES} bytes"),
            ));
            break;
        }
        let buffered = match reader.fill_buf() {
            Ok(buffered) => buffered,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Read timeout: the partial frame stays accumulated. The
                // top of the loop owns the shutdown decision (it gives
                // in-flight requests the DRAIN_GRACE window to arrive and
                // be refused in a typed way, instead of an abrupt EOF).
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if buffered.is_empty() {
            break; // client closed the connection (a trailing half-frame is dropped)
        }
        let (consumed, complete) = match buffered.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (buffered.len(), false),
        };
        frame.extend_from_slice(&buffered[..consumed]);
        reader.consume(consumed);
        if complete {
            match std::str::from_utf8(&frame) {
                Ok(text) => {
                    let text = text.trim();
                    if !text.is_empty() {
                        handle_frame(shared, conn, text);
                    }
                }
                Err(_) => conn.send(&err_response(
                    None,
                    ErrorKind::Protocol,
                    "request line is not valid UTF-8",
                )),
            }
            frame.clear();
        }
    }
}

fn handle_frame(shared: &Arc<Shared>, conn: &Arc<Conn>, frame: &str) {
    let request = match Request::parse(frame) {
        Ok(request) => request,
        Err((id, message)) => {
            conn.send(&err_response(id, ErrorKind::Protocol, &message));
            return;
        }
    };
    match request {
        Request::Verify { id, spec, options } => {
            let flags = Arc::new(JobFlags::new());
            conn.pending.lock().insert(id, Arc::clone(&flags));
            let deadline = options
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            enum Admission {
                Accepted,
                ShuttingDown,
                /// Typed `overloaded` refusal with its backoff hint.
                Shed {
                    retry_after_ms: u64,
                    why: &'static str,
                },
            }
            let admission = {
                // Accept-or-refuse is decided under the queue lock, where
                // `begin_shutdown` also flips the flag: a job can never be
                // pushed after the workers were told to drain-and-exit (it
                // would hang unanswered), and every job pushed before is
                // covered by the drain guarantee. Shedding decides here too,
                // so `queued` vs `max_queue_depth` is race-free.
                let mut queue = shared.queue.lock();
                if shared.shutting_down() {
                    Admission::ShuttingDown
                } else if queue.len() >= shared.config.max_queue_depth {
                    Admission::Shed {
                        retry_after_ms: shared.retry_after_hint(queue.len()),
                        why: "admission queue is full",
                    }
                } else if shared.degraded.load(Ordering::SeqCst)
                    && options
                        .max_states
                        .is_some_and(|limit| limit > shared.config.default_max_states)
                {
                    // The degradation ladder's last rung: under memory
                    // pressure only larger-than-default jobs are refused;
                    // ordinary traffic keeps flowing.
                    Admission::Shed {
                        retry_after_ms: 5_000,
                        why: "server is degraded under memory pressure; \
                              large max_states jobs are refused",
                    }
                } else {
                    queue.push_back(Job {
                        conn: Arc::clone(conn),
                        id,
                        flags: Arc::clone(&flags),
                        spec,
                        options,
                        deadline,
                    });
                    Admission::Accepted
                }
            };
            match admission {
                Admission::Accepted => {
                    if let Some(deadline) = deadline {
                        shared.deadlines.lock().push((deadline, Arc::clone(&flags)));
                    }
                    shared.work_cv.notify_one();
                }
                Admission::ShuttingDown => {
                    conn.settle(id, &flags);
                    conn.send(&err_response(
                        Some(id),
                        ErrorKind::ShuttingDown,
                        "server is draining; no new work accepted",
                    ));
                }
                Admission::Shed {
                    retry_after_ms,
                    why,
                } => {
                    shared.counters.shed.fetch_add(1, Ordering::SeqCst);
                    conn.settle(id, &flags);
                    conn.send(&overloaded_response(id, why, retry_after_ms));
                }
            }
        }
        Request::Stats { id } => conn.send(&ok_response(id, [("stats", stats_json(shared))])),
        Request::Metrics { id, format } => {
            let snapshot = synced_snapshot(shared);
            match format {
                MetricsFormat::Json => {
                    conn.send(&metrics_response_line(id, &snapshot.to_json_text()));
                }
                MetricsFormat::Text => conn.send(&ok_response(
                    id,
                    [("metrics_text", Json::str(snapshot.to_prometheus_text()))],
                )),
            }
        }
        Request::Cancel { id, target } => {
            let flags = conn.pending.lock().get(&target).cloned();
            let honoured = match flags {
                Some(flags) => {
                    flags.cancel.cancel();
                    // `true` guarantees the job never runs at all; `false`
                    // means it already started (or finished) — a started job
                    // is aborted cooperatively at its next state expansion
                    // and answers `error.kind = "cancelled"`. Module docs.
                    !flags.started.load(Ordering::SeqCst)
                }
                None => false,
            };
            conn.send(&ok_response(id, [("cancelled", Json::Bool(honoured))]));
        }
        Request::Ping { id } => conn.send(&ok_response(id, [("pong", Json::Bool(true))])),
        Request::Shutdown { id } => {
            conn.send(&ok_response(id, [("shutting_down", Json::Bool(true))]));
            shared.begin_shutdown();
        }
    }
}

/// The shape of the `stats` reply: every section and every field it carries.
/// Each field is backed by a registry gauge named `{section}_{field}`,
/// refreshed from the live subsystems by `sync_registry`; `stats_json`
/// renders *exactly* this table from the registry snapshot, the `metrics`
/// surfaces export the same gauges, and `serve_bench` asserts stats replies
/// against this same table — one source of truth for the stats shape.
pub const STATS_SCHEMA: &[(&str, &[&str])] = &[
    (
        "cache",
        &[
            "hits",
            "misses",
            "disk_hits",
            "insertions",
            "evictions",
            "uncacheable",
            "entries",
            "states",
            "capacity_entries",
            "capacity_states",
        ],
    ),
    (
        // The persistent tier's counters: rendered `null` when no `--store`
        // is configured, so a monitoring client can tell "no disk tier" from
        // "a disk tier that has seen no traffic".
        "store",
        &[
            "entries",
            "states",
            "file_bytes",
            "live_bytes",
            "hits",
            "misses",
            "insertions",
            "evictions",
            "corrupt_rejected",
            "recovered_bytes_dropped",
            "compactions",
            "last_compaction_unix_ms",
            "errors",
        ],
    ),
    (
        // `completed + failed + cancelled + shed + deadline_exceeded` sums
        // to the `verify` requests answered; `failed` includes the
        // `internal-error` replies of caught panics, which are additionally
        // broken out in `panics_caught`.
        "requests",
        &[
            "queued",
            "in_flight",
            "completed",
            "cancelled",
            "failed",
            "shed",
            "deadline_exceeded",
            "panics_caught",
        ],
    ),
    (
        "engine",
        &[
            "workers",
            "jobs",
            "per_request_jobs",
            "states_explored",
            "connections",
            "queue_capacity",
            "degraded",
        ],
    ),
    (
        // The exploration memory layer (`lts::memory`): the engine publishes
        // these process-wide as it runs — `resident_bytes` is the last
        // reported working set (seen-set pages + in-RAM frontier), the
        // `spill_*` counters accumulate across every budgeted exploration
        // that pushed cold frontier segments to disk.
        "explore",
        &[
            "resident_bytes",
            "spill_segments",
            "spill_bytes",
            "spill_reloads",
        ],
    ),
    (
        // The hash-consing interner is process-wide and append-only, so a
        // long-running daemon's memory cost and memo efficiency are part of
        // its operational accounting. `types` and `terms` are the two
        // retained-id counters (the type- and term-side arenas).
        "interner",
        &[
            "types",
            "terms",
            "normalize_hits",
            "normalize_misses",
            "canonical_hits",
            "canonical_misses",
            "par_hits",
            "par_misses",
            "fv_hits",
            "fv_misses",
        ],
    ),
    (
        // The checker's id-keyed derivation caches (subtyping, ▷◁, typing):
        // process-wide hit/miss counters, the compounding second layer on
        // top of the interner.
        "checker",
        &[
            "subtype_hits",
            "subtype_misses",
            "interact_hits",
            "interact_misses",
            "typing_hits",
            "typing_misses",
        ],
    ),
];

/// Copies every live subsystem statistic into its `{section}_{field}` gauge
/// of the process-wide metric registry, making the registry snapshot the one
/// place both `stats` and `metrics` render from.
fn sync_registry(shared: &Shared) {
    let registry = obs::global();
    let set = |section: &str, field: &str, value: u64| {
        registry.gauge(&format!("{section}_{field}")).set(value);
    };
    let config = &shared.config;
    let counters = &shared.counters;

    let cache = shared.cache.lock().stats();
    set("cache", "hits", cache.hits);
    set("cache", "misses", cache.misses);
    set(
        "cache",
        "disk_hits",
        counters.disk_hits.load(Ordering::SeqCst),
    );
    set("cache", "insertions", cache.insertions);
    set("cache", "evictions", cache.evictions);
    set("cache", "uncacheable", cache.uncacheable);
    set("cache", "entries", cache.entries as u64);
    set("cache", "states", cache.states as u64);
    set("cache", "capacity_entries", config.cache.max_entries as u64);
    set("cache", "capacity_states", config.cache.max_states as u64);

    if let Some(disk) = &shared.store {
        let s = disk.lock().stats();
        set("store", "entries", s.entries as u64);
        set("store", "states", s.states as u64);
        set("store", "file_bytes", s.file_bytes);
        set("store", "live_bytes", s.live_bytes);
        set("store", "hits", s.hits);
        set("store", "misses", s.misses);
        set("store", "insertions", s.insertions);
        set("store", "evictions", s.evictions);
        set("store", "corrupt_rejected", s.corrupt_rejected);
        set(
            "store",
            "recovered_bytes_dropped",
            s.recovered_bytes_dropped,
        );
        set("store", "compactions", s.compactions);
        set(
            "store",
            "last_compaction_unix_ms",
            s.last_compaction_unix_ms,
        );
        set(
            "store",
            "errors",
            counters.store_errors.load(Ordering::SeqCst),
        );
    }

    set("requests", "queued", shared.queue.lock().len() as u64);
    set(
        "requests",
        "in_flight",
        counters.in_flight.load(Ordering::SeqCst) as u64,
    );
    set(
        "requests",
        "completed",
        counters.completed.load(Ordering::SeqCst),
    );
    set(
        "requests",
        "cancelled",
        counters.cancelled.load(Ordering::SeqCst),
    );
    set("requests", "failed", counters.failed.load(Ordering::SeqCst));
    set("requests", "shed", counters.shed.load(Ordering::SeqCst));
    set(
        "requests",
        "deadline_exceeded",
        counters.deadline_exceeded.load(Ordering::SeqCst),
    );
    set(
        "requests",
        "panics_caught",
        counters.panics_caught.load(Ordering::SeqCst),
    );

    set("engine", "workers", config.workers as u64);
    set("engine", "jobs", config.jobs as u64);
    set(
        "engine",
        "per_request_jobs",
        config.per_request_jobs() as u64,
    );
    set(
        "engine",
        "states_explored",
        counters.states_explored.load(Ordering::SeqCst),
    );
    set(
        "engine",
        "connections",
        counters.connections.load(Ordering::SeqCst),
    );
    set("engine", "queue_capacity", config.max_queue_depth as u64);
    set(
        "engine",
        "degraded",
        u64::from(shared.degraded.load(Ordering::SeqCst)),
    );

    // The memory layer publishes its gauge/counters directly under the
    // engine's own names; re-reading them here folds the `explore` section
    // into the same `{section}_{field}` schema `stats_json` renders from
    // (the resident-bytes re-set is an identity write).
    set(
        "explore",
        "resident_bytes",
        registry.gauge("explore_resident_bytes").get(),
    );
    set(
        "explore",
        "spill_segments",
        registry.counter("spill_segments").get(),
    );
    set(
        "explore",
        "spill_bytes",
        registry.counter("spill_bytes").get(),
    );
    set(
        "explore",
        "spill_reloads",
        registry.counter("spill_reloads").get(),
    );

    let intern = effpi::intern_stats();
    set("interner", "types", intern.types as u64);
    set("interner", "terms", intern.terms as u64);
    set("interner", "normalize_hits", intern.normalize_hits);
    set("interner", "normalize_misses", intern.normalize_misses);
    set("interner", "canonical_hits", intern.canonical_hits);
    set("interner", "canonical_misses", intern.canonical_misses);
    set("interner", "par_hits", intern.par_hits);
    set("interner", "par_misses", intern.par_misses);
    set("interner", "fv_hits", intern.fv_hits);
    set("interner", "fv_misses", intern.fv_misses);

    let checker = effpi::checker_stats();
    set("checker", "subtype_hits", checker.subtype_hits);
    set("checker", "subtype_misses", checker.subtype_misses);
    set("checker", "interact_hits", checker.interact_hits);
    set("checker", "interact_misses", checker.interact_misses);
    set("checker", "typing_hits", checker.typing_hits);
    set("checker", "typing_misses", checker.typing_misses);
}

/// Refreshes the registry from this server's live stats and snapshots it.
/// The sync-then-snapshot pair runs under a process-wide lock: several
/// servers in one process (the test suites do this) share the global
/// registry, and an interleaved sync from another server must not bleed its
/// values into this server's snapshot.
fn synced_snapshot(shared: &Shared) -> obs::Snapshot {
    static SYNC: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SYNC
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sync_registry(shared);
    obs::global().snapshot()
}

fn stats_json(shared: &Shared) -> Json {
    let snapshot = synced_snapshot(shared);
    let field_json = |section: &str, field: &str| {
        let name = format!("{section}_{field}");
        Json::Num(snapshot.gauges.get(&name).copied().unwrap_or(0) as f64)
    };
    Json::obj(STATS_SCHEMA.iter().map(|(section, fields)| {
        if *section == "store" && shared.store.is_none() {
            (*section, Json::Null)
        } else {
            (
                *section,
                Json::obj(
                    fields
                        .iter()
                        .map(|field| (*field, field_json(section, field))),
                ),
            )
        }
    }))
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                // Popping before the shutdown check is what makes shutdown a
                // *drain*: queued work always completes.
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutting_down() {
                    break None;
                }
                queue = shared.work_cv.wait(queue);
            }
        };
        let Some(job) = job else { break };
        process(shared, job);
    }
}

/// Sweeps deadlines and watches memory pressure, once per [`POLL_INTERVAL`]
/// until shutdown. Both duties are time-driven, not request-driven, so they
/// live on their own thread: a full worker pool cannot delay a deadline
/// firing, and the watchdog needs no traffic to notice pressure.
fn housekeeper_loop(shared: &Arc<Shared>) {
    // The 90% soft response fires once per crossing, not every tick: the
    // interner only grows, so repeated evict/compact cycles would thrash the
    // caches without reclaiming anything new.
    let mut soft_shed = false;
    while !shared.shutting_down() {
        thread::sleep(POLL_INTERVAL);

        {
            let now = Instant::now();
            let mut deadlines = shared.deadlines.lock();
            deadlines.retain(|(deadline, flags)| {
                if flags.finished.load(Ordering::SeqCst) {
                    return false; // answered in time; stop watching
                }
                if now >= *deadline {
                    // Order matters: the worker reads `deadline_exceeded`
                    // only after observing the cancel, so flag first.
                    flags.deadline_exceeded.store(true, Ordering::SeqCst);
                    flags.cancel.cancel();
                    return false;
                }
                true
            });
        }

        if let Some(budget) = shared.config.memory_budget {
            let intern = effpi::intern_stats();
            let nodes = intern.types as u64 + intern.terms as u64;
            // At 90%: shed what is re-derivable — halve the LRU, compact the
            // disk tier — before refusing anything.
            if !soft_shed && nodes.saturating_mul(10) >= budget.saturating_mul(9) {
                soft_shed = true;
                let bounds = shared.config.cache;
                shared
                    .cache
                    .lock()
                    .evict_to(bounds.max_entries / 2, bounds.max_states / 2);
                if let Some(disk) = &shared.store {
                    let _ = disk.lock().compact();
                }
            }
            // At 100%: degrade (sticky — the arenas are append-only) and let
            // admission refuse larger-than-default jobs.
            if nodes >= budget {
                shared.degraded.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// The cache tier that answered a `verify` (`cold` = a fresh verification).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tier {
    Lru,
    Disk,
    Cold,
}

impl Tier {
    fn as_str(self) -> &'static str {
        match self {
            Tier::Lru => "lru",
            Tier::Disk => "disk",
            Tier::Cold => "cold",
        }
    }
}

/// How one `verify` job resolved, before the response frame is assembled
/// (the split lets `process` splice per-request phases into successful
/// frames and emit the `--log-requests` line from one place).
enum Verdict {
    Done {
        tier: Tier,
        key: String,
        report: Arc<str>,
    },
    Refused {
        kind: ErrorKind,
        message: String,
    },
}

fn process(shared: &Shared, job: Job) {
    job.flags.started.store(true, Ordering::SeqCst);
    // A deadline that elapsed while the job sat in the queue (whether or not
    // the housekeeper already swept it) refuses before any work is spent.
    let expired = job.deadline.is_some_and(|d| Instant::now() >= d)
        || (job.flags.cancel.is_cancelled() && job.flags.deadline_exceeded.load(Ordering::SeqCst));
    if expired {
        shared
            .counters
            .deadline_exceeded
            .fetch_add(1, Ordering::SeqCst);
        job.flags.finished.store(true, Ordering::SeqCst);
        job.conn.settle(job.id, &job.flags);
        if shared.config.log_requests {
            eprintln!(
                "[effpi-serve] verify id={} key=- tier=- outcome=deadline-exceeded total=0us",
                job.id
            );
        }
        job.conn.send(&err_response(
            Some(job.id),
            ErrorKind::DeadlineExceeded,
            "deadline_ms elapsed before the request started",
        ));
        return;
    }
    if job.flags.cancel.is_cancelled() {
        shared.counters.cancelled.fetch_add(1, Ordering::SeqCst);
        job.flags.finished.store(true, Ordering::SeqCst);
        job.conn.settle(job.id, &job.flags);
        if shared.config.log_requests {
            eprintln!(
                "[effpi-serve] verify id={} key=- tier=- outcome=cancelled total=0us",
                job.id
            );
        }
        job.conn.send(&err_response(
            Some(job.id),
            ErrorKind::Cancelled,
            "request cancelled before it started",
        ));
        return;
    }
    shared.counters.in_flight.fetch_add(1, Ordering::SeqCst);
    // Every span closed on this thread during the verification — parse,
    // fingerprint, cache probes, typecheck, explore, check, render — lands
    // in this request's breakdown. The whole collection runs under
    // `catch_unwind`: a panic anywhere in the engine is this request's
    // failure, not the daemon's — the worker survives, the client gets a
    // typed `internal-error`, and the event is counted. (The phase collector
    // unwinds cleanly — its thread-local stack pops via a drop guard — and
    // `runtime::sync::Mutex` recovers poisoned guards, so an unwound lock
    // can never wedge later requests.)
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        obs::phases::collect(|| verify_response(shared, &job))
    }));
    let (verdict, phases) = outcome.unwrap_or_else(|_| {
        shared.counters.panics_caught.fetch_add(1, Ordering::SeqCst);
        shared.counters.failed.fetch_add(1, Ordering::SeqCst);
        // Chaos-run traces must be debuggable: flush the span sink now, the
        // way a clean exit would.
        obs::global().flush_trace();
        (
            Verdict::Refused {
                kind: ErrorKind::Internal,
                message: "verification panicked; the worker survived and the daemon is healthy"
                    .into(),
            },
            obs::phases::Phases::default(),
        )
    });
    shared.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
    job.flags.finished.store(true, Ordering::SeqCst);
    job.conn.settle(job.id, &job.flags);
    if shared.config.log_requests {
        let (key, tier, outcome) = match &verdict {
            Verdict::Done { tier, key, .. } => (key.as_str(), tier.as_str(), "ok"),
            Verdict::Refused { kind, .. } => ("-", "-", kind.as_str()),
        };
        let fragment = phases.to_log_fragment();
        eprintln!(
            "[effpi-serve] verify id={} key={key} tier={tier} outcome={outcome} total={}{}{}",
            job.id,
            obs::phases::format_us(phases.total_us()),
            if fragment.is_empty() { "" } else { " " },
            fragment,
        );
    }
    let response = match verdict {
        Verdict::Done { tier, key, report } => {
            let cached = tier != Tier::Cold;
            if job.options.profile {
                verify_response_line_profiled(job.id, cached, &key, &report, &phases.to_json_text())
            } else {
                verify_response_line(job.id, cached, &key, &report)
            }
        }
        Verdict::Refused { kind, message } => err_response(Some(job.id), kind, &message),
    };
    job.conn.send(&response);
}

fn verify_response(shared: &Shared, job: &Job) -> Verdict {
    let parsed = {
        let _span = obs::span("parse");
        parse_spec(&job.spec)
    };
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => {
            // `failed` and `completed` are disjoint buckets: a refused spec
            // counts only here, an answered verdict (holding or not) only
            // below — so completed + failed + cancelled sums to the requests
            // answered.
            shared.counters.failed.fetch_add(1, Ordering::SeqCst);
            return Verdict::Refused {
                kind: ErrorKind::Spec,
                message: e.to_string(),
            };
        }
    };
    let config = &shared.config;
    let options = job.options;
    let mut builder = Session::builder()
        .max_states(options.max_states.unwrap_or(config.default_max_states))
        .parallelism(config.per_request_jobs())
        .cancel_token(job.flags.cancel.clone());
    if let Some(depth) = options.max_depth {
        builder = builder.max_depth(depth);
    }
    if let Some(unfold) = options.max_unfold {
        builder = builder.max_unfold(unfold);
    }
    if let Some(probe) = options.auto_probe {
        builder = builder.auto_probe(probe);
    }
    if let Some(strategy) = options.strategy {
        builder = builder.strategy(strategy);
    }
    // Per-request budget wins over the server default. Operational only:
    // `Session::cache_key` excludes it (a budgeted run's report is
    // byte-identical to an unbudgeted one), so hits below stay valid
    // whatever budget the original verification ran under.
    if let Some(bytes) = options
        .memory_budget
        .map(|bytes| bytes as usize)
        .or(config.explore_memory_budget)
    {
        builder = builder.memory_budget(bytes);
    }
    let session = builder.build();
    let key = {
        let _span = obs::span("fingerprint");
        session.cache_key(&spec)
    };

    let lru_hit = {
        let _span = obs::span("lru_probe");
        shared.cache.lock().get(key)
    };
    if let Some(report) = lru_hit {
        shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        return Verdict::Done {
            tier: Tier::Lru,
            key: key.to_string(),
            report,
        };
    }
    // LRU miss: probe the persistent tier. A disk hit is still a cache hit
    // on the wire (`cached: true` — the bytes replay a cold run verbatim),
    // and is promoted into the LRU so the next encounter never touches disk.
    if let Some(disk) = &shared.store {
        let from_disk = {
            let _span = obs::span("disk_probe");
            probe_disk(shared, disk, key)
        };
        if let Some((states, report)) = from_disk {
            let rendered: Arc<str> = Arc::from(report.as_str());
            shared
                .cache
                .lock()
                .insert(key, states, Arc::clone(&rendered));
            shared.counters.disk_hits.fetch_add(1, Ordering::SeqCst);
            shared.counters.completed.fetch_add(1, Ordering::SeqCst);
            return Verdict::Done {
                tier: Tier::Disk,
                key: key.to_string(),
                report: rendered,
            };
        }
    }
    // The worker-boundary fault point: `Panic` exercises the catch_unwind
    // isolation in `process`, `Error` models an engine that failed without
    // unwinding. It sits *below* both cache probes — a cache hit replays
    // stored bytes and exercises no engine, so only cold verifications tick
    // the pass counter — and is decided while no lock is held.
    if let Some(hook) = &shared.faults {
        match hook.inject(FaultPoint::Worker) {
            None => {}
            Some(FaultAction::Delay { ms }) => thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::Panic) => panic!("injected worker fault"),
            Some(FaultAction::Error) => {
                shared.counters.failed.fetch_add(1, Ordering::SeqCst);
                return Verdict::Refused {
                    kind: ErrorKind::Internal,
                    message: "injected worker error".into(),
                };
            }
        }
    }
    // The cache lock is NOT held across the verification: concurrent misses
    // on one key may verify twice (the later insert refreshes in place) —
    // a deliberate trade against serialising every distinct request behind
    // the slowest one. (The deep phases — typecheck, explore, check — are
    // timed by the pipeline layers themselves.)
    let report = session.run_spec(&spec);
    if matches!(
        report.first_error(),
        Some(effpi::Error::Verify(effpi::VerifyError::Cancelled))
    ) {
        // Aborted mid-exploration: the partial result is discarded (never
        // cached — an aborted prefix is scheduling-dependent) and the verify
        // gets its typed refusal. The housekeeper flips the same token for
        // an elapsed deadline, which reports under its own name and bucket.
        if job.flags.deadline_exceeded.load(Ordering::SeqCst) {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::SeqCst);
            return Verdict::Refused {
                kind: ErrorKind::DeadlineExceeded,
                message: "deadline_ms elapsed during exploration".into(),
            };
        }
        shared.counters.cancelled.fetch_add(1, Ordering::SeqCst);
        return Verdict::Refused {
            kind: ErrorKind::Cancelled,
            message: "request cancelled during exploration".into(),
        };
    }
    let states = report.states();
    shared
        .counters
        .states_explored
        .fetch_add(states as u64, Ordering::SeqCst);
    // Rendered once; the cache shares the text by refcount, and the miss
    // response splices the same bytes a future hit will replay.
    let rendered: Arc<str> = Arc::from(report.to_wire_json().to_string().as_str());
    shared
        .cache
        .lock()
        .insert(key, states, Arc::clone(&rendered));
    // Write-through to the persistent tier: a cold verdict survives the
    // daemon. A failed append degrades to a warm-memory-only entry — which
    // is exactly what an injected store-write `Error` models.
    if let Some(disk) = &shared.store {
        let injected = match shared
            .faults
            .as_ref()
            .and_then(|hook| hook.inject(FaultPoint::StoreWrite))
        {
            None => false,
            Some(FaultAction::Delay { ms }) => {
                thread::sleep(Duration::from_millis(ms));
                false
            }
            Some(FaultAction::Panic) => panic!("injected store-write fault"),
            Some(FaultAction::Error) => true,
        };
        if injected || disk.lock().put(key, states, &rendered).is_err() {
            shared.counters.store_errors.fetch_add(1, Ordering::SeqCst);
        }
    }
    shared.counters.completed.fetch_add(1, Ordering::SeqCst);
    Verdict::Done {
        tier: Tier::Cold,
        key: key.to_string(),
        report: rendered,
    }
}

/// The disk-tier probe, in two phases so the store mutex is **never held
/// across the disk read**: resolve the key to a [`store::ReadPlan`] under
/// the lock (pure index work), release it, read and validate the bytes on a
/// private file handle, then settle the hit back under the lock. A plan that
/// went stale — a compaction renamed the log between the phases — fails
/// validation (checksums are per-record and carry the key) and falls back to
/// the classic locked [`VerdictStore::get`], which owns index repair.
///
/// Also the store-read fault point: an injected `Error` degrades to cold
/// verification exactly like a real I/O failure.
fn probe_disk(
    shared: &Shared,
    disk: &Mutex<VerdictStore>,
    key: effpi::CacheKey,
) -> Option<(usize, String)> {
    if let Some(hook) = &shared.faults {
        match hook.inject(FaultPoint::StoreRead) {
            None => {}
            Some(FaultAction::Delay { ms }) => thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::Panic) => panic!("injected store-read fault"),
            Some(FaultAction::Error) => {
                shared.counters.store_errors.fetch_add(1, Ordering::SeqCst);
                return None;
            }
        }
    }
    let plan = disk.lock().plan_read(key)?;
    match plan.read(key) {
        Ok(Some(found)) => {
            disk.lock().note_hit(key);
            Some(found)
        }
        Ok(None) => {
            // Stale plan or rotted bytes: the locked read re-resolves against
            // the current log and repairs the index if the record is gone.
            match disk.lock().get(key) {
                Ok(found) => found,
                Err(_) => {
                    shared.counters.store_errors.fetch_add(1, Ordering::SeqCst);
                    None
                }
            }
        }
        Err(_) => {
            shared.counters.store_errors.fetch_add(1, Ordering::SeqCst);
            None
        }
    }
}

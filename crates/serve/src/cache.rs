//! The content-addressed verdict cache.
//!
//! Every completed verification is stored under its
//! [`CacheKey`] — the stable hash of the *normalised*
//! request computed by `effpi::fingerprint` — so semantically identical
//! specs (alias renaming, re-ordered unions, whitespace changes) hit one
//! entry, and a hit replays the stored wire report **byte-identically** to
//! the cold run that populated it (the [`wire::Json`] rendering is
//! deterministic, and the stored value is returned as-is, cold-run timings
//! included).
//!
//! The cache is bounded twice over, in the two ways a verification cache can
//! actually hurt a long-running daemon:
//!
//! * **by entries** — a hard cap on the number of cached verdicts;
//! * **by estimated state count** — the sum of each entry's explored LTS
//!   states, a proxy for how much memory the *reports* and their provenance
//!   are worth keeping. One giant scenario should not be able to pin
//!   thousands of small ones out, nor vice versa.
//!
//! Either bound evicts **least-recently-used first** (a `BTreeMap` recency
//! index keyed by a monotonic tick: O(log n) per touch/evict, no unsafe, no
//! hand-rolled linked list). A report whose state count alone exceeds the
//! state budget is served but never admitted.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use effpi::CacheKey;

/// Bounds for a [`VerdictCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Maximum number of cached verdicts.
    pub max_entries: usize,
    /// Maximum *summed* explored-state count across all cached verdicts.
    pub max_states: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1024,
            max_states: 1_000_000,
        }
    }
}

/// A point-in-time snapshot of the cache counters (the `stats` request).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to satisfy a bound.
    pub evictions: u64,
    /// Reports served but never admitted (alone over the state budget).
    pub uncacheable: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Summed explored-state count currently resident.
    pub states: usize,
}

struct Entry {
    tick: u64,
    states: usize,
    /// The report **pre-rendered** to its wire text and shared by refcount:
    /// a hit is a clone of the `Arc`, not a deep copy of a JSON tree, so the
    /// global cache lock is held for nanoseconds — and splicing the stored
    /// text into a response replays the cold run's bytes trivially.
    report: Arc<str>,
}

/// A bounded, LRU, content-addressed verdict cache (see the module docs).
///
/// Not internally synchronised: the server wraps it in one
/// `runtime::sync::Mutex`, which is also what makes the hit/miss counters
/// coherent with the entries they describe.
pub struct VerdictCache {
    config: CacheConfig,
    map: HashMap<u128, Entry>,
    /// Recency index: tick → key. Ticks are unique (monotonic counter), so
    /// the first entry is always the least recently used.
    recency: BTreeMap<u64, u128>,
    tick: u64,
    stats: CacheStats,
}

impl VerdictCache {
    /// Creates an empty cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        VerdictCache {
            config,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Looks up a verdict, counting a hit or miss and refreshing recency on
    /// a hit. The returned text is the stored rendering — byte-identical to
    /// the response body that populated the entry.
    pub fn get(&mut self, key: CacheKey) -> Option<Arc<str>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key.0) {
            Some(entry) => {
                self.stats.hits += 1;
                self.recency.remove(&entry.tick);
                entry.tick = tick;
                self.recency.insert(tick, key.0);
                Some(Arc::clone(&entry.report))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Admits a verdict under `key`, charging it `states` against the state
    /// budget, then evicts LRU entries until both bounds hold. A report that
    /// alone exceeds the state budget is not admitted (counted as
    /// `uncacheable`); re-inserting an existing key refreshes it in place.
    pub fn insert(&mut self, key: CacheKey, states: usize, report: Arc<str>) {
        if states > self.config.max_states || self.config.max_entries == 0 {
            self.stats.uncacheable += 1;
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.map.remove(&key.0) {
            // A racing worker verified the same key twice (the cache does not
            // hold its lock across a verification); keep the newer entry.
            self.recency.remove(&old.tick);
            self.stats.states -= old.states;
            self.stats.entries -= 1;
        }
        self.map.insert(
            key.0,
            Entry {
                tick,
                states,
                report,
            },
        );
        self.recency.insert(tick, key.0);
        self.stats.entries += 1;
        self.stats.states += states;
        self.stats.insertions += 1;
        self.evict_until(self.config.max_entries, self.config.max_states);
    }

    /// Evicts LRU entries down to *tighter-than-configured* bounds — the
    /// memory watchdog's lever: under pressure the server sheds cached
    /// verdicts (they are all re-derivable, by construction) before it sheds
    /// requests. The configured bounds are untouched; the cache refills to
    /// them as traffic returns.
    pub fn evict_to(&mut self, max_entries: usize, max_states: usize) {
        self.evict_until(max_entries, max_states);
    }

    /// Evicts least-recently-used entries until both bounds hold.
    fn evict_until(&mut self, max_entries: usize, max_states: usize) {
        while self.stats.entries > max_entries || self.stats.states > max_states {
            let (&oldest, &victim) = self
                .recency
                .iter()
                .next()
                .expect("bounds exceeded implies at least one entry");
            self.recency.remove(&oldest);
            let evicted = self.map.remove(&victim).expect("recency index in sync");
            self.stats.entries -= 1;
            self.stats.states -= evicted.states;
            self.stats.evictions += 1;
        }
    }

    /// The current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> CacheKey {
        CacheKey(n)
    }

    fn report(tag: &str) -> Arc<str> {
        Arc::from(
            wire::Json::obj([("stable_line", wire::Json::str(tag))])
                .to_string()
                .as_str(),
        )
    }

    fn cache(max_entries: usize, max_states: usize) -> VerdictCache {
        VerdictCache::new(CacheConfig {
            max_entries,
            max_states,
        })
    }

    #[test]
    fn hits_replay_the_stored_report_byte_identically() {
        let mut c = cache(8, 1000);
        assert_eq!(c.get(key(1)), None);
        c.insert(key(1), 10, report("cold"));
        let hit = c.get(key(1)).expect("warm hit");
        assert_eq!(hit.to_string(), report("cold").to_string());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.states), (1, 1, 1, 10));
    }

    #[test]
    fn entry_bound_evicts_least_recently_used_first() {
        let mut c = cache(2, 1000);
        c.insert(key(1), 1, report("a"));
        c.insert(key(2), 1, report("b"));
        assert!(c.get(key(1)).is_some()); // refresh 1: now 2 is LRU
        c.insert(key(3), 1, report("c"));
        assert!(c.get(key(2)).is_none(), "LRU entry 2 evicted");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn state_budget_evicts_until_it_holds() {
        let mut c = cache(100, 100);
        c.insert(key(1), 60, report("a"));
        c.insert(key(2), 30, report("b"));
        // 60 + 30 + 50 > 100: evicts 1 (LRU), then still 30 + 50 <= 100.
        c.insert(key(3), 50, report("c"));
        assert!(c.get(key(1)).is_none());
        assert!(c.get(key(2)).is_some());
        assert_eq!(c.stats().states, 80);
    }

    #[test]
    fn oversized_reports_are_served_but_never_admitted() {
        let mut c = cache(8, 100);
        c.insert(key(1), 101, report("huge"));
        assert!(c.get(key(1)).is_none());
        assert_eq!(c.stats().uncacheable, 1);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn reinserting_a_key_refreshes_in_place() {
        let mut c = cache(8, 1000);
        c.insert(key(1), 10, report("first"));
        c.insert(key(1), 20, report("second"));
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().states, 20);
        assert_eq!(
            c.get(key(1)).unwrap().to_string(),
            report("second").to_string()
        );
    }

    #[test]
    fn evict_to_sheds_lru_entries_without_changing_the_bounds() {
        let mut c = cache(8, 1000);
        for n in 1..=4 {
            c.insert(key(n), 10, report("r"));
        }
        c.evict_to(2, 1000);
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.stats().evictions, 2);
        assert!(c.get(key(1)).is_none(), "oldest went first");
        assert!(c.get(key(4)).is_some(), "newest survives");
        // The configured bounds are untouched: the cache refills past the
        // temporary target.
        for n in 5..=8 {
            c.insert(key(n), 10, report("r"));
        }
        assert_eq!(c.stats().entries, 6);
    }

    #[test]
    fn zero_capacity_caches_nothing_and_never_panics() {
        let mut c = cache(0, 0);
        c.insert(key(1), 0, report("a"));
        assert!(c.get(key(1)).is_none());
        assert_eq!(c.stats().entries, 0);
    }
}

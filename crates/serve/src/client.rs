//! A blocking client for the `effpi-serve` protocol.
//!
//! [`Client`] drives one connection synchronously: each high-level call
//! sends one frame and waits for the response with the matching `id`. The
//! lower-level [`Client::submit_verify`] / [`Client::recv`] pair exposes the
//! pipelined wire directly — that is how a caller keeps several `verify`
//! requests in flight (and how cancellation is exercised: submit, then
//! [`Client::cancel`] the returned id).

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::path::Path;

use wire::Json;

use crate::protocol::{MetricsFormat, Request, VerifyOptions, WireReport};

/// An error talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-exchange.
    Io(io::Error),
    /// The server sent a frame this client cannot make sense of.
    Protocol(String),
    /// The server answered `ok: false`.
    Server {
        /// The machine-readable `error.kind`.
        kind: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful `verify` response.
#[derive(Clone, PartialEq, Debug)]
pub struct VerifyReply {
    /// The decoded report.
    pub report: WireReport,
    /// Whether the verdict cache answered (`true` ⇒ the report replays a
    /// cold run byte-identically, timings included).
    pub cached: bool,
    /// The content address the verdict is stored under (32 hex digits).
    pub key: String,
}

/// One response frame, minimally decoded: the echoed id and the payload.
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    /// The request id this answers (`None`: a protocol error for an
    /// unparseable frame).
    pub id: Option<u64>,
    /// The whole response object.
    pub body: Json,
}

impl Response {
    /// Re-shapes an `ok: false` body into [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Returns the server's error, or a protocol error for malformed frames.
    pub fn into_ok(self) -> Result<Json, ClientError> {
        match self.body.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(self.body),
            Some(false) => {
                let error = self.body.get("error");
                let field = |key: &str| {
                    error
                        .and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    kind: field("kind"),
                    message: field("message"),
                })
            }
            None => Err(ClientError::Protocol(format!(
                "response without \"ok\": {}",
                self.body
            ))),
        }
    }
}

/// A blocking connection to an `effpi-serve` daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    /// Responses read while waiting for a different id (the server answers
    /// pipelined requests in completion order, not send order); [`Client::recv`]
    /// drains this before touching the wire, so no response is ever lost.
    buffered: std::collections::VecDeque<Response>,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client::from_halves(Box::new(stream), Box::new(writer)))
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client::from_halves(Box::new(stream), Box::new(writer)))
    }

    /// Wraps an already-connected stream pair (useful for tests).
    pub fn from_halves(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Client {
        Client {
            reader: BufReader::new(reader),
            writer,
            next_id: 0,
            buffered: std::collections::VecDeque::new(),
        }
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Reads the next response frame — buffered responses first, then the
    /// wire — whichever request it answers.
    ///
    /// # Errors
    ///
    /// Returns an I/O error (including EOF) or a malformed frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if let Some(buffered) = self.buffered.pop_front() {
            return Ok(buffered);
        }
        self.recv_from_wire()
    }

    fn recv_from_wire(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let body = Json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("bad response frame: {e}")))?;
        let id = body.get("id").and_then(Json::as_usize).map(|v| v as u64);
        Ok(Response { id, body })
    }

    /// Reads responses until the one answering `id` arrives. The server
    /// answers pipelined requests in completion order, so responses to
    /// *other* in-flight requests may arrive first — they are buffered for
    /// the next [`Client::recv`], never dropped.
    fn recv_for(&mut self, id: u64) -> Result<Json, ClientError> {
        if let Some(at) = self.buffered.iter().position(|r| r.id == Some(id)) {
            let response = self.buffered.remove(at).expect("position just found");
            return response.into_ok();
        }
        loop {
            let response = self.recv_from_wire()?;
            if response.id == Some(id) {
                return response.into_ok();
            }
            self.buffered.push_back(response);
        }
    }

    /// Sends a `verify` for a spec text without waiting; returns the request
    /// id to [`Client::recv`] or [`Client::cancel`] against.
    ///
    /// # Errors
    ///
    /// Returns the send error.
    pub fn submit_verify(
        &mut self,
        spec: &str,
        options: VerifyOptions,
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Verify {
            id,
            spec: spec.to_string(),
            options,
        })?;
        Ok(id)
    }

    /// Verifies a spec text and waits for the verdict.
    ///
    /// # Errors
    ///
    /// Returns transport errors or the server's refusal (spec parse error,
    /// cancellation, shutdown).
    pub fn verify(
        &mut self,
        spec: &str,
        options: VerifyOptions,
    ) -> Result<VerifyReply, ClientError> {
        let id = self.submit_verify(spec, options)?;
        let body = self.recv_for(id)?;
        decode_verify(&body)
    }

    /// Fetches the server/cache counters as the raw `stats` object.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })?;
        let body = self.recv_for(id)?;
        body.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats response without \"stats\"".into()))
    }

    /// Fetches the full telemetry snapshot as the raw `metrics` JSON object
    /// (counters, gauges and latency histograms of the server process).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Metrics {
            id,
            format: MetricsFormat::Json,
        })?;
        let body = self.recv_for(id)?;
        body.get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("metrics response without \"metrics\"".into()))
    }

    /// Fetches the telemetry snapshot as Prometheus-style text exposition.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Metrics {
            id,
            format: MetricsFormat::Text,
        })?;
        let body = self.recv_for(id)?;
        body.get("metrics_text")
            .and_then(Json::as_str)
            .map(String::from)
            .ok_or_else(|| {
                ClientError::Protocol("metrics response without \"metrics_text\"".into())
            })
    }

    /// Asks the server to drop a not-yet-started `verify` of this
    /// connection. `Ok(true)` guarantees the job will not run; `Ok(false)`
    /// means it already started (or finished, or was never known).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn cancel(&mut self, target: u64) -> Result<bool, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Cancel { id, target })?;
        let body = self.recv_for(id)?;
        Ok(body
            .get("cancelled")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Ping { id })?;
        self.recv_for(id).map(|_| ())
    }

    /// Asks the server to shut down gracefully (acknowledged before the
    /// drain begins).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Shutdown { id })?;
        self.recv_for(id).map(|_| ())
    }
}

/// Decodes a successful `verify` response body into a [`VerifyReply`].
///
/// # Errors
///
/// Returns a protocol error for structurally wrong bodies.
pub fn decode_verify(body: &Json) -> Result<VerifyReply, ClientError> {
    let report = body
        .get("report")
        .ok_or_else(|| ClientError::Protocol("verify response without \"report\"".into()))?;
    Ok(VerifyReply {
        report: WireReport::from_json(report).map_err(ClientError::Protocol)?,
        cached: body.get("cached").and_then(Json::as_bool).unwrap_or(false),
        key: body
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
    })
}

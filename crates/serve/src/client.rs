//! A blocking client for the `effpi-serve` protocol.
//!
//! [`Client`] drives one connection synchronously: each high-level call
//! sends one frame and waits for the response with the matching `id`. The
//! lower-level [`Client::submit_verify`] / [`Client::recv`] pair exposes the
//! pipelined wire directly — that is how a caller keeps several `verify`
//! requests in flight (and how cancellation is exercised: submit, then
//! [`Client::cancel`] the returned id).
//!
//! For unattended callers there is [`Client::verify_retrying`]: capped
//! exponential backoff with *deterministic* seeded jitter (see
//! [`RetryPolicy`]), honoring the server's `retry_after_ms` hint on
//! `overloaded` refusals and reconnecting after transport failures. Retrying
//! a `verify` is always safe — verification is idempotent under its content
//! address (`CacheKey`), so a duplicate submission can only hit the cache.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::path::Path;
use std::time::Duration;

use wire::Json;

use crate::faults::splitmix64;
use crate::protocol::{ErrorKind, MetricsFormat, Request, VerifyOptions, WireReport};

/// An error talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-exchange.
    Io(io::Error),
    /// The server sent a frame this client cannot make sense of.
    Protocol(String),
    /// The server answered `ok: false`.
    Server {
        /// The machine-readable `error.kind`.
        kind: String,
        /// The human-readable message.
        message: String,
        /// The backoff hint of an `overloaded` refusal (absent on every
        /// other kind): come back no sooner than this many milliseconds.
        retry_after_ms: Option<u64>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server {
                kind,
                message,
                retry_after_ms,
            } => {
                write!(f, "server error [{kind}]: {message}")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms}ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful `verify` response.
#[derive(Clone, PartialEq, Debug)]
pub struct VerifyReply {
    /// The decoded report.
    pub report: WireReport,
    /// Whether the verdict cache answered (`true` ⇒ the report replays a
    /// cold run byte-identically, timings included).
    pub cached: bool,
    /// The content address the verdict is stored under (32 hex digits).
    pub key: String,
}

/// One response frame, minimally decoded: the echoed id and the payload.
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    /// The request id this answers (`None`: a protocol error for an
    /// unparseable frame).
    pub id: Option<u64>,
    /// The whole response object.
    pub body: Json,
}

impl Response {
    /// Re-shapes an `ok: false` body into [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Returns the server's error, or a protocol error for malformed frames.
    pub fn into_ok(self) -> Result<Json, ClientError> {
        match self.body.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(self.body),
            Some(false) => {
                let error = self.body.get("error");
                let field = |key: &str| {
                    error
                        .and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    kind: field("kind"),
                    message: field("message"),
                    retry_after_ms: error
                        .and_then(|e| e.get("retry_after_ms"))
                        .and_then(Json::as_usize)
                        .map(|v| v as u64),
                })
            }
            None => Err(ClientError::Protocol(format!(
                "response without \"ok\": {}",
                self.body
            ))),
        }
    }
}

/// How [`Client::verify_retrying`] paces itself: capped exponential backoff
/// with **deterministic** jitter. The jitter multiplies each wait by a
/// factor in `[0.5, 1.0)` derived from `splitmix64(jitter_seed ^ attempt)` —
/// seeded, so a fleet of clients desynchronises its retries while every
/// individual schedule stays exactly reproducible (tests pin the seed and
/// predict the waits with [`RetryPolicy::backoff_ms`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total tries, the first included (`0` is treated as `1`).
    pub attempts: u32,
    /// Socket read timeout applied for the exchange (`None`: wait forever).
    /// A timed-out read surfaces as a transport failure and is retried over
    /// a fresh connection.
    pub timeout: Option<Duration>,
    /// First backoff wait, milliseconds (doubles every attempt).
    pub backoff_base_ms: u64,
    /// Ceiling on the un-jittered wait, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            timeout: None,
            backoff_base_ms: 25,
            backoff_cap_ms: 2_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry number `attempt` (0-based: the wait after the
    /// first failure is `backoff_ms(0)`), jitter applied. Pure — tests pin
    /// `jitter_seed` and predict every wait.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let base = self.backoff_base_ms.max(1);
        let exp = base.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.backoff_cap_ms.max(base));
        // A factor in [0.5, 1.0): the top 53 bits of the hash, as a fraction.
        let fraction =
            (splitmix64(self.jitter_seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = (capped as f64 * (0.5 + fraction / 2.0)).round() as u64;
        jittered.max(1)
    }
}

/// Where a [`Client`] connected, kept for transparent reconnects.
enum Target {
    Tcp(String),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// Applies a read timeout to a live socket (captures a dup of the socket
/// handle; absent when the transport cannot time out).
type TimeoutHook = Box<dyn Fn(Option<Duration>) -> io::Result<()> + Send>;

/// A blocking connection to an `effpi-serve` daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    /// Responses read while waiting for a different id (the server answers
    /// pipelined requests in completion order, not send order); [`Client::recv`]
    /// drains this before touching the wire, so no response is ever lost.
    buffered: std::collections::VecDeque<Response>,
    /// The reconnect address (`None` for [`Client::from_halves`] pairs,
    /// which have nowhere to reconnect to).
    target: Option<Target>,
    /// Applies a read timeout to the live socket (captures a dup of the
    /// socket handle; `None` when the transport cannot time out).
    timeout_hook: Option<TimeoutHook>,
    /// The configured read timeout, re-applied after every reconnect.
    timeout: Option<Duration>,
    /// How retry waits actually pass; tests swap in a recorder to assert the
    /// schedule without slowing the suite down.
    sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let mut client = Client::over_tcp(TcpStream::connect(addr)?)?;
        client.target = Some(Target::Tcp(addr.to_string()));
        Ok(client)
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        let mut client = Client::over_unix(std::os::unix::net::UnixStream::connect(path)?)?;
        client.target = Some(Target::Unix(path.to_path_buf()));
        Ok(client)
    }

    fn over_tcp(stream: TcpStream) -> io::Result<Client> {
        let writer = stream.try_clone()?;
        // Read timeouts are a property of the socket, not of one dup of it,
        // so a retained clone can adjust them after the halves are boxed.
        let control = stream.try_clone()?;
        let mut client = Client::from_halves(Box::new(stream), Box::new(writer));
        client.timeout_hook = Some(Box::new(move |t| control.set_read_timeout(t)));
        Ok(client)
    }

    #[cfg(unix)]
    fn over_unix(stream: std::os::unix::net::UnixStream) -> io::Result<Client> {
        let writer = stream.try_clone()?;
        let control = stream.try_clone()?;
        let mut client = Client::from_halves(Box::new(stream), Box::new(writer));
        client.timeout_hook = Some(Box::new(move |t| control.set_read_timeout(t)));
        Ok(client)
    }

    /// Wraps an already-connected stream pair (useful for tests).
    pub fn from_halves(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Client {
        Client {
            reader: BufReader::new(reader),
            writer,
            next_id: 0,
            buffered: std::collections::VecDeque::new(),
            target: None,
            timeout_hook: None,
            timeout: None,
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// Sets (or clears) the socket read timeout. A response that does not
    /// arrive in time surfaces as [`ClientError::Io`]; with a reconnectable
    /// target, [`Client::verify_retrying`] then retries over a fresh
    /// connection. Best-effort no-op on transports without timeouts
    /// ([`Client::from_halves`]).
    ///
    /// # Errors
    ///
    /// Returns the socket configuration error.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        match &self.timeout_hook {
            Some(hook) => hook(timeout),
            None => Ok(()),
        }
    }

    /// Replaces how retry waits pass (tests record instead of sleeping).
    pub fn set_sleeper(&mut self, sleeper: impl FnMut(Duration) + Send + 'static) {
        self.sleeper = Box::new(sleeper);
    }

    /// Replaces this client's transport with a fresh connection to its
    /// original target. `Ok(false)` when there is no target to return to
    /// (a [`Client::from_halves`] pair). Buffered undelivered responses are
    /// dropped — they belong to the dead connection's request ids.
    fn reconnect(&mut self) -> io::Result<bool> {
        let Some(target) = &self.target else {
            return Ok(false);
        };
        let fresh = match target {
            Target::Tcp(addr) => Client::over_tcp(TcpStream::connect(addr)?)?,
            #[cfg(unix)]
            Target::Unix(path) => {
                Client::over_unix(std::os::unix::net::UnixStream::connect(path)?)?
            }
        };
        self.reader = fresh.reader;
        self.writer = fresh.writer;
        self.timeout_hook = fresh.timeout_hook;
        self.buffered.clear();
        if let Some(hook) = &self.timeout_hook {
            hook(self.timeout)?;
        }
        Ok(true)
    }

    fn send(&mut self, request: &Request) -> io::Result<()> {
        self.writer.write_all(request.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Reads the next response frame — buffered responses first, then the
    /// wire — whichever request it answers.
    ///
    /// # Errors
    ///
    /// Returns an I/O error (including EOF) or a malformed frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if let Some(buffered) = self.buffered.pop_front() {
            return Ok(buffered);
        }
        self.recv_from_wire()
    }

    fn recv_from_wire(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let body = Json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("bad response frame: {e}")))?;
        let id = body.get("id").and_then(Json::as_usize).map(|v| v as u64);
        Ok(Response { id, body })
    }

    /// Reads responses until the one answering `id` arrives. The server
    /// answers pipelined requests in completion order, so responses to
    /// *other* in-flight requests may arrive first — they are buffered for
    /// the next [`Client::recv`], never dropped.
    fn recv_for(&mut self, id: u64) -> Result<Json, ClientError> {
        if let Some(at) = self.buffered.iter().position(|r| r.id == Some(id)) {
            let response = self.buffered.remove(at).expect("position just found");
            return response.into_ok();
        }
        loop {
            let response = self.recv_from_wire()?;
            if response.id == Some(id) {
                return response.into_ok();
            }
            self.buffered.push_back(response);
        }
    }

    /// Sends a `verify` for a spec text without waiting; returns the request
    /// id to [`Client::recv`] or [`Client::cancel`] against.
    ///
    /// # Errors
    ///
    /// Returns the send error.
    pub fn submit_verify(
        &mut self,
        spec: &str,
        options: VerifyOptions,
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Verify {
            id,
            spec: spec.to_string(),
            options,
        })?;
        Ok(id)
    }

    /// Verifies a spec text and waits for the verdict.
    ///
    /// # Errors
    ///
    /// Returns transport errors or the server's refusal (spec parse error,
    /// cancellation, shutdown).
    pub fn verify(
        &mut self,
        spec: &str,
        options: VerifyOptions,
    ) -> Result<VerifyReply, ClientError> {
        let id = self.submit_verify(spec, options)?;
        let body = self.recv_for(id)?;
        decode_verify(&body)
    }

    /// [`Client::verify`] with a [`RetryPolicy`]: applies the policy's
    /// timeout, and on each failed attempt waits
    /// `max(backoff_ms(attempt), server's retry_after_ms hint)` before
    /// trying again. What retries: `overloaded` refusals (on the live
    /// connection) and transport failures (over a *fresh* connection — a
    /// timed-out or torn exchange may have desynchronised the frame stream,
    /// and resubmitting is safe because verify is idempotent under its
    /// content address). Every other server refusal — spec errors,
    /// `internal-error`, `deadline-exceeded`, `shutting-down` — is returned
    /// immediately: retrying cannot change a deterministic answer.
    ///
    /// # Errors
    ///
    /// Returns the first non-retryable error, or the last retryable one once
    /// the attempt budget is spent.
    pub fn verify_retrying(
        &mut self,
        spec: &str,
        options: VerifyOptions,
        policy: &RetryPolicy,
    ) -> Result<VerifyReply, ClientError> {
        self.set_timeout(policy.timeout)?;
        let attempts = policy.attempts.max(1);
        let mut last_error = None;
        for attempt in 0..attempts {
            let error = match self.verify(spec, options) {
                Ok(reply) => return Ok(reply),
                Err(e) => e,
            };
            let out_of_budget = attempt + 1 >= attempts;
            match error {
                ClientError::Server {
                    ref kind,
                    retry_after_ms,
                    ..
                } if kind == ErrorKind::Overloaded.as_str() => {
                    if out_of_budget {
                        return Err(error);
                    }
                    let wait = policy.backoff_ms(attempt).max(retry_after_ms.unwrap_or(0));
                    (self.sleeper)(Duration::from_millis(wait));
                    last_error = Some(error);
                }
                ClientError::Io(_) | ClientError::Protocol(_) => {
                    if out_of_budget {
                        return Err(error);
                    }
                    (self.sleeper)(Duration::from_millis(policy.backoff_ms(attempt)));
                    match self.reconnect() {
                        Ok(true) => last_error = Some(error),
                        // Nowhere to reconnect to, or the reconnect itself
                        // failed: surface the original failure.
                        Ok(false) | Err(_) => return Err(error),
                    }
                }
                other => return Err(other),
            }
        }
        Err(last_error.unwrap_or_else(|| ClientError::Protocol("retry budget exhausted".into())))
    }

    /// Fetches the server/cache counters as the raw `stats` object.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })?;
        let body = self.recv_for(id)?;
        body.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats response without \"stats\"".into()))
    }

    /// Fetches the full telemetry snapshot as the raw `metrics` JSON object
    /// (counters, gauges and latency histograms of the server process).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Metrics {
            id,
            format: MetricsFormat::Json,
        })?;
        let body = self.recv_for(id)?;
        body.get("metrics")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("metrics response without \"metrics\"".into()))
    }

    /// Fetches the telemetry snapshot as Prometheus-style text exposition.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Metrics {
            id,
            format: MetricsFormat::Text,
        })?;
        let body = self.recv_for(id)?;
        body.get("metrics_text")
            .and_then(Json::as_str)
            .map(String::from)
            .ok_or_else(|| {
                ClientError::Protocol("metrics response without \"metrics_text\"".into())
            })
    }

    /// Asks the server to drop a not-yet-started `verify` of this
    /// connection. `Ok(true)` guarantees the job will not run; `Ok(false)`
    /// means it already started (or finished, or was never known).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn cancel(&mut self, target: u64) -> Result<bool, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Cancel { id, target })?;
        let body = self.recv_for(id)?;
        Ok(body
            .get("cancelled")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Ping { id })?;
        self.recv_for(id).map(|_| ())
    }

    /// Asks the server to shut down gracefully (acknowledged before the
    /// drain begins).
    ///
    /// # Errors
    ///
    /// Returns transport or protocol errors.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Shutdown { id })?;
        self.recv_for(id).map(|_| ())
    }
}

/// Decodes a successful `verify` response body into a [`VerifyReply`].
///
/// # Errors
///
/// Returns a protocol error for structurally wrong bodies.
pub fn decode_verify(body: &Json) -> Result<VerifyReply, ClientError> {
    let report = body
        .get("report")
        .ok_or_else(|| ClientError::Protocol("verify response without \"report\"".into()))?;
    Ok(VerifyReply {
        report: WireReport::from_json(report).map_err(ClientError::Protocol)?,
        cached: body.get("cached").and_then(Json::as_bool).unwrap_or(false),
        key: body
            .get("key")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
    })
}

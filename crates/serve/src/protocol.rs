//! The line-delimited JSON protocol of `effpi-serve`.
//!
//! One request per line, one response per line, every frame a single JSON
//! object — see `crates/serve/PROTOCOL.md` for the full frame catalogue with
//! examples. This module is the *shared* half of the wire: request parsing
//! (used by the server) and response parsing (used by the client library),
//! plus the typed [`WireReport`] view of a report object.
//!
//! Design rules:
//!
//! * every request carries a client-chosen numeric `id`; every response
//!   echoes the `id` it answers (protocol errors on unparseable frames echo
//!   `null`), so a client may pipeline requests and match answers;
//! * responses always carry `"ok": true` or `"ok": false`; failures carry a
//!   machine-readable `error.kind` from a closed set (see [`ErrorKind`]);
//! * unknown *fields* are ignored (forward compatibility), unknown *ops* are
//!   a [`ErrorKind::Protocol`] error.

use std::fmt;

use effpi::Strategy;
use wire::Json;

/// The closed set of `error.kind` values a response can carry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The frame was not valid JSON, not an object, or structurally wrong
    /// (missing `op`/`id`, bad field type, unknown op).
    Protocol,
    /// The spec text did not parse ([`effpi::spec::parse_spec`] failed).
    Spec,
    /// The request was cancelled before it started executing.
    Cancelled,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request's `deadline_ms` elapsed before a verdict was reached.
    DeadlineExceeded,
    /// The server refused the request to protect itself (admission queue
    /// full, or degraded under memory pressure). The error object carries a
    /// `retry_after_ms` hint; retrying is always safe because verify is
    /// idempotent under its cache key.
    Overloaded,
    /// The request made the server fail internally (e.g. a panic inside the
    /// verification engine, caught at the worker boundary). The daemon and
    /// its worker survive; other requests are unaffected.
    Internal,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Spec => "spec",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal-error",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-request engine overrides of a `verify` request; `None` fields use the
/// server's defaults. All of these except `profile` are part of the cache
/// key.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VerifyOptions {
    /// Overrides the state bound.
    pub max_states: Option<usize>,
    /// Overrides the typing/subtyping depth bound.
    pub max_depth: Option<usize>,
    /// Overrides the µ-unfolding bound.
    pub max_unfold: Option<usize>,
    /// Overrides automatic payload probing.
    pub auto_probe: Option<bool>,
    /// Overrides the exploration strategy (wire spelling of
    /// [`Strategy::parse`], e.g. `"dfs"` or `"beam:32"`). Part of the cache
    /// key whenever it is not the default `"bfs"`, so bounded runs explored
    /// under different disciplines never share a verdict.
    pub strategy: Option<Strategy>,
    /// When `true`, the response frame carries a `"phases"` object with the
    /// per-phase timing breakdown of *this* request (parse, fingerprint,
    /// cache probes, exploration, checking, rendering — microseconds).
    /// Observability only: it never touches the cache key, and the report
    /// bytes are identical with or without it.
    pub profile: bool,
    /// A wall-clock budget for this request, milliseconds from admission.
    /// When it elapses before a verdict, the run is cancelled and the reply
    /// is a `deadline-exceeded` error. Operational like `profile` — never
    /// part of the cache key: a verdict is a verdict no matter how long the
    /// client was willing to wait for it.
    pub deadline_ms: Option<u64>,
    /// Caps the exploration's resident working set for this request, in
    /// bytes: past the budget, cold frontier segments spill to disk and
    /// stream back in discovery order (see `lts::memory`). Operational like
    /// `deadline_ms` — **never** part of the cache key: a budgeted run's
    /// report is byte-identical to an unbudgeted one, so a verdict computed
    /// either way is a valid hit for both.
    pub memory_budget: Option<u64>,
}

/// How a `metrics` reply renders the snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MetricsFormat {
    /// A structured `"metrics"` JSON object (the default).
    #[default]
    Json,
    /// Prometheus-style text exposition, carried as a `"metrics_text"`
    /// string.
    Text,
}

impl MetricsFormat {
    /// The wire spelling of the `format` field.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Text => "text",
        }
    }
}

/// A parsed request frame.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Run a `.effpi` spec text through the pipeline (cache-fronted).
    Verify {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The specification text.
        spec: String,
        /// Engine overrides.
        options: VerifyOptions,
    },
    /// Report server/cache counters.
    Stats {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
    /// Export the full telemetry snapshot (every counter, gauge and latency
    /// histogram of the process-wide metric registry).
    Metrics {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The exposition format of the reply.
        format: MetricsFormat,
    },
    /// Cancel a not-yet-started `verify` previously sent **on the same
    /// connection**.
    Cancel {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// The id of the request to cancel.
        target: u64,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
    /// Gracefully shut the server down (drain, respond, close).
    Shutdown {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns `(echo id if one was readable, message)` on malformed frames,
    /// so the server can still address its protocol-error response.
    pub fn parse(line: &str) -> Result<Request, (Option<u64>, String)> {
        let root = Json::parse(line.trim()).map_err(|e| (None, format!("bad JSON: {e}")))?;
        let id = root.get("id").and_then(Json::as_usize).map(|v| v as u64);
        let err = |msg: String| (id, msg);
        if !matches!(root, Json::Obj(_)) {
            return Err(err("request must be a JSON object".into()));
        }
        let id = id.ok_or_else(|| (None, "missing numeric \"id\"".to_string()))?;
        let op = root
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing string \"op\"".into()))?;
        match op {
            "verify" => {
                let spec = root
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or_else(|| err("verify requires a string \"spec\"".into()))?
                    .to_string();
                let field = |key: &str| -> Result<Option<usize>, (Option<u64>, String)> {
                    match root.get(key) {
                        None | Some(Json::Null) => Ok(None),
                        Some(v) => v
                            .as_usize()
                            .map(Some)
                            .ok_or_else(|| err(format!("\"{key}\" must be a non-negative number"))),
                    }
                };
                let auto_probe = match root.get("auto_probe") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_bool()
                            .ok_or_else(|| err("\"auto_probe\" must be a boolean".into()))?,
                    ),
                };
                let strategy = match root.get("strategy") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let text = v
                            .as_str()
                            .ok_or_else(|| err("\"strategy\" must be a string".into()))?;
                        Some(Strategy::parse(text).map_err(|e| err(format!("\"strategy\": {e}")))?)
                    }
                };
                let profile = match root.get("profile") {
                    None | Some(Json::Null) => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| err("\"profile\" must be a boolean".into()))?,
                };
                Ok(Request::Verify {
                    id,
                    spec,
                    options: VerifyOptions {
                        max_states: field("max_states")?,
                        max_depth: field("max_depth")?,
                        max_unfold: field("max_unfold")?,
                        auto_probe,
                        strategy,
                        profile,
                        deadline_ms: field("deadline_ms")?.map(|v| v as u64),
                        memory_budget: field("memory_budget")?.map(|v| v as u64),
                    },
                })
            }
            "stats" => Ok(Request::Stats { id }),
            "metrics" => {
                let format = match root.get("format") {
                    None | Some(Json::Null) => MetricsFormat::Json,
                    Some(v) => match v.as_str() {
                        Some("json") => MetricsFormat::Json,
                        Some("text") => MetricsFormat::Text,
                        _ => return Err(err("\"format\" must be \"json\" or \"text\"".into())),
                    },
                };
                Ok(Request::Metrics { id, format })
            }
            "cancel" => {
                let target = root
                    .get("target")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| err("cancel requires a numeric \"target\"".into()))?
                    as u64;
                Ok(Request::Cancel { id, target })
            }
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(err(format!("unknown op {other:?}"))),
        }
    }

    /// Renders the request as its wire line (without the trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Request::Verify { id, spec, options } => {
                let mut fields = vec![
                    ("op".to_string(), Json::str("verify")),
                    ("id".to_string(), Json::Num(*id as f64)),
                    ("spec".to_string(), Json::str(spec.clone())),
                ];
                let mut num = |key: &str, v: Option<usize>| {
                    if let Some(v) = v {
                        fields.push((key.to_string(), Json::Num(v as f64)));
                    }
                };
                num("max_states", options.max_states);
                num("max_depth", options.max_depth);
                num("max_unfold", options.max_unfold);
                if let Some(p) = options.auto_probe {
                    fields.push(("auto_probe".to_string(), Json::Bool(p)));
                }
                if let Some(s) = options.strategy {
                    fields.push(("strategy".to_string(), Json::str(s.to_string())));
                }
                if options.profile {
                    fields.push(("profile".to_string(), Json::Bool(true)));
                }
                if let Some(ms) = options.deadline_ms {
                    fields.push(("deadline_ms".to_string(), Json::Num(ms as f64)));
                }
                if let Some(bytes) = options.memory_budget {
                    fields.push(("memory_budget".to_string(), Json::Num(bytes as f64)));
                }
                Json::obj(fields)
            }
            Request::Stats { id } => simple_op("stats", *id),
            Request::Metrics { id, format } => Json::obj([
                ("op", Json::str("metrics")),
                ("id", Json::Num(*id as f64)),
                ("format", Json::str(format.as_str())),
            ]),
            Request::Cancel { id, target } => Json::obj([
                ("op", Json::str("cancel")),
                ("id", Json::Num(*id as f64)),
                ("target", Json::Num(*target as f64)),
            ]),
            Request::Ping { id } => simple_op("ping", *id),
            Request::Shutdown { id } => simple_op("shutdown", *id),
        };
        json.to_string()
    }
}

fn simple_op(op: &str, id: u64) -> Json {
    Json::obj([("op", Json::str(op)), ("id", Json::Num(id as f64))])
}

fn id_json(id: Option<u64>) -> Json {
    match id {
        Some(id) => Json::Num(id as f64),
        None => Json::Null,
    }
}

/// Builds a success response carrying `fields` in addition to `id`/`ok`.
pub fn ok_response<I, K>(id: u64, fields: I) -> String
where
    I: IntoIterator<Item = (K, Json)>,
    K: Into<String>,
{
    let mut all = vec![
        ("id".to_string(), Json::Num(id as f64)),
        ("ok".to_string(), Json::Bool(true)),
    ];
    all.extend(fields.into_iter().map(|(k, v)| (k.into(), v)));
    Json::obj(all).to_string()
}

/// Builds a successful `verify` response line around an **already-rendered**
/// report body — the verdict cache stores reports as text, so a hit splices
/// the stored bytes straight into the frame without re-rendering a JSON
/// tree. Field order matches the sorted-key rendering every other response
/// gets from [`Json`]'s `BTreeMap` objects.
pub fn verify_response_line(id: u64, cached: bool, key: &str, report: &str) -> String {
    format!(
        "{{\"cached\":{cached},\"id\":{id},\"key\":{},\"ok\":true,\"report\":{report}}}",
        Json::str(key)
    )
}

/// [`verify_response_line`] with the request's phase breakdown spliced in —
/// only sent when the `verify` asked for `"profile": true`. `phases_json` is
/// an already-rendered JSON object (`obs::phases::Phases::to_json_text`);
/// field order stays the sorted-key order of every other frame.
pub fn verify_response_line_profiled(
    id: u64,
    cached: bool,
    key: &str,
    report: &str,
    phases_json: &str,
) -> String {
    format!(
        "{{\"cached\":{cached},\"id\":{id},\"key\":{},\"ok\":true,\
         \"phases\":{phases_json},\"report\":{report}}}",
        Json::str(key)
    )
}

/// Builds a successful `metrics` response line around the registry
/// snapshot's **already-rendered** JSON text (`obs::Snapshot::to_json_text`
/// renders deterministically and is wire-parseable, so the bytes are spliced
/// straight in, like a cached report).
pub fn metrics_response_line(id: u64, snapshot_json: &str) -> String {
    format!("{{\"id\":{id},\"metrics\":{snapshot_json},\"ok\":true}}")
}

/// Builds a failure response (`id` may be unknown for unparseable frames).
pub fn err_response(id: Option<u64>, kind: ErrorKind, message: &str) -> String {
    Json::obj([
        ("id", id_json(id)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("kind", Json::str(kind.as_str())),
                ("message", Json::str(message)),
            ]),
        ),
    ])
    .to_string()
}

/// Builds an [`ErrorKind::Overloaded`] failure response whose error object
/// additionally carries `retry_after_ms` — the server's backoff hint, which
/// [`crate::Client::verify_retrying`] honors before resubmitting.
pub fn overloaded_response(id: u64, message: &str, retry_after_ms: u64) -> String {
    Json::obj([
        ("id", Json::Num(id as f64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("kind", Json::str(ErrorKind::Overloaded.as_str())),
                ("message", Json::str(message)),
                ("retry_after_ms", Json::Num(retry_after_ms as f64)),
            ]),
        ),
    ])
    .to_string()
}

/// The typed client-side view of a `verify` response's `report` object — the
/// wire rendering of [`effpi::Report::to_wire_json`].
#[derive(Clone, PartialEq, Debug)]
pub struct WireReport {
    /// Overall verdict ([`effpi::Report::passed`]).
    pub passed: bool,
    /// States of the explored LTS.
    pub states: usize,
    /// Transitions of the explored LTS.
    pub transitions: usize,
    /// `(property name, holds)` per `check`, in spec order (`false` for
    /// properties that errored).
    pub verdicts: Vec<(String, bool)>,
    /// The deterministic summary line ([`effpi::ReportSummary::stable_line`])
    /// — byte-identical between a cache hit and the cold run it replays.
    pub stable_line: String,
    /// Step 1 outcome: `None` when the spec has no `term`.
    pub typecheck: Option<Result<(), String>>,
    /// First error anywhere in the run, if anything failed.
    pub error: Option<String>,
}

impl WireReport {
    /// Decodes a `report` object.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem.
    pub fn from_json(report: &Json) -> Result<WireReport, String> {
        let need = |key: &str| format!("report missing field {key:?}");
        let verdicts = report
            .get("properties")
            .and_then(Json::as_arr)
            .ok_or_else(|| need("properties"))?
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let name = p
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("property {i} missing \"name\""))?;
                let holds = p.get("holds").and_then(Json::as_bool).unwrap_or(false);
                Ok((name.to_string(), holds))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let typecheck = match report.get("typecheck") {
            None | Some(Json::Null) => None,
            Some(tc) => match tc.get("ok").and_then(Json::as_bool) {
                Some(true) => Some(Ok(())),
                Some(false) => Some(Err(tc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("typecheck failed")
                    .to_string())),
                None => return Err("typecheck missing boolean \"ok\"".into()),
            },
        };
        Ok(WireReport {
            passed: report
                .get("passed")
                .and_then(Json::as_bool)
                .ok_or_else(|| need("passed"))?,
            states: report
                .get("states")
                .and_then(Json::as_usize)
                .ok_or_else(|| need("states"))?,
            transitions: report
                .get("transitions")
                .and_then(Json::as_usize)
                .ok_or_else(|| need("transitions"))?,
            verdicts,
            stable_line: report
                .get("stable_line")
                .and_then(Json::as_str)
                .ok_or_else(|| need("stable_line"))?
                .to_string(),
            typecheck,
            error: report.get("error").and_then(Json::as_str).map(String::from),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let requests = [
            Request::Verify {
                id: 7,
                spec: "env x : cio[int]\ntype i[x, Pi(v: int) nil]".into(),
                options: VerifyOptions {
                    max_states: Some(10_000),
                    auto_probe: Some(false),
                    ..VerifyOptions::default()
                },
            },
            Request::Verify {
                id: 8,
                spec: "env x : cio[int]\ntype i[x, Pi(v: int) nil]".into(),
                options: VerifyOptions {
                    strategy: Some(Strategy::Beam { width: 32 }),
                    ..VerifyOptions::default()
                },
            },
            Request::Verify {
                id: 9,
                spec: "env x : cio[int]\ntype i[x, Pi(v: int) nil]".into(),
                options: VerifyOptions {
                    profile: true,
                    ..VerifyOptions::default()
                },
            },
            Request::Verify {
                id: 10,
                spec: "env x : cio[int]\ntype i[x, Pi(v: int) nil]".into(),
                options: VerifyOptions {
                    deadline_ms: Some(1_500),
                    ..VerifyOptions::default()
                },
            },
            Request::Verify {
                id: 11,
                spec: "env x : cio[int]\ntype i[x, Pi(v: int) nil]".into(),
                options: VerifyOptions {
                    memory_budget: Some(1 << 20),
                    ..VerifyOptions::default()
                },
            },
            Request::Stats { id: 1 },
            Request::Metrics {
                id: 5,
                format: MetricsFormat::Json,
            },
            Request::Metrics {
                id: 6,
                format: MetricsFormat::Text,
            },
            Request::Cancel { id: 2, target: 7 },
            Request::Ping { id: 3 },
            Request::Shutdown { id: 4 },
        ];
        for request in requests {
            let line = request.to_line();
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(Request::parse(&line), Ok(request), "{line}");
        }
    }

    #[test]
    fn malformed_frames_report_protocol_errors_with_best_effort_ids() {
        // No JSON at all: no id to echo.
        assert_eq!(Request::parse("nonsense").unwrap_err().0, None);
        // Valid JSON but no id.
        assert_eq!(
            Request::parse("{\"op\":\"ping\"}").unwrap_err().0,
            None,
            "id is required"
        );
        // id readable, op wrong: the error can be addressed.
        let (id, msg) = Request::parse("{\"op\":\"explode\",\"id\":9}").unwrap_err();
        assert_eq!(id, Some(9));
        assert!(msg.contains("unknown op"), "{msg}");
        // verify without a spec.
        let (id, msg) = Request::parse("{\"op\":\"verify\",\"id\":3}").unwrap_err();
        assert_eq!(id, Some(3));
        assert!(msg.contains("spec"), "{msg}");
        // bad option type.
        let (_, msg) =
            Request::parse("{\"op\":\"verify\",\"id\":3,\"spec\":\"\",\"max_states\":\"a\"}")
                .unwrap_err();
        assert!(msg.contains("max_states"), "{msg}");
        // unknown strategy spelling.
        let (id, msg) =
            Request::parse("{\"op\":\"verify\",\"id\":4,\"spec\":\"\",\"strategy\":\"best\"}")
                .unwrap_err();
        assert_eq!(id, Some(4));
        assert!(msg.contains("unknown strategy"), "{msg}");
        // strategy must be a string, not a number.
        let (_, msg) = Request::parse("{\"op\":\"verify\",\"id\":5,\"spec\":\"\",\"strategy\":3}")
            .unwrap_err();
        assert!(msg.contains("strategy"), "{msg}");
    }

    #[test]
    fn responses_carry_ok_and_echo_ids() {
        let ok = ok_response(5, [("pong", Json::Bool(true))]);
        let parsed = Json::parse(&ok).unwrap();
        assert_eq!(parsed.get("id").and_then(Json::as_usize), Some(5));
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));

        let err = err_response(None, ErrorKind::Protocol, "bad frame");
        let parsed = Json::parse(&err).unwrap();
        assert_eq!(parsed.get("id"), Some(&Json::Null));
        assert_eq!(
            parsed
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("protocol")
        );
    }

    #[test]
    fn overloaded_responses_carry_retry_after() {
        let line = overloaded_response(12, "queue full", 75);
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        let error = parsed.get("error").unwrap();
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some(ErrorKind::Overloaded.as_str())
        );
        assert_eq!(
            error.get("retry_after_ms").and_then(Json::as_usize),
            Some(75)
        );
    }

    #[test]
    fn wire_reports_decode_from_the_session_rendering() {
        let report = effpi::Session::builder()
            .max_states(10_000)
            .build()
            .run_spec_text("env x : cio[int]\ntype o[x, int, Pi() nil]\ncheck deadlock_free [x]")
            .unwrap();
        let decoded = WireReport::from_json(&report.to_wire_json()).unwrap();
        assert!(decoded.passed);
        assert_eq!(decoded.verdicts, vec![("deadlock-free".to_string(), true)]);
        assert_eq!(decoded.stable_line, report.summary().stable_line());
        assert_eq!(decoded.typecheck, None);
        assert_eq!(decoded.error, None);
        assert!(decoded.states > 0);
    }
}

//! The metric registry: named counters, gauges and fixed-bucket histograms
//! behind lock-sharded registration, plus the deterministic [`Snapshot`]
//! renderers (wire-compatible JSON and Prometheus-style text).

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::span::Span;

/// A microsecond clock. Injectable so golden tests are byte-deterministic;
/// the epoch is arbitrary (only differences are meaningful).
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch. Must be monotone.
    fn now_us(&self) -> u64;
}

/// The production clock: microseconds since the registry was created
/// (`std::time::Instant`, so it never goes backwards).
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A hand-advanced clock for deterministic tests.
pub struct TestClock {
    now: AtomicU64,
}

impl TestClock {
    /// A test clock starting at 0 µs.
    pub fn new() -> TestClock {
        TestClock {
            now: AtomicU64::new(0),
        }
    }

    /// Advances the clock by `delta` microseconds.
    pub fn advance_us(&self, delta: u64) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute microsecond value.
    pub fn set_us(&self, now: u64) {
        self.now.store(now, Ordering::SeqCst);
    }
}

impl Default for TestClock {
    fn default() -> Self {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// A monotonically increasing counter handle. Cloning shares the underlying
/// atomic; recording is one `fetch_add`.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value handle (set, not accumulated). Cloning shares the
/// underlying atomic; recording is one `store`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The default latency bucket upper bounds, in microseconds: 50µs … 30s.
/// Sixteen buckets (plus the implicit `+Inf`), so a histogram record is a
/// short fixed scan — O(1), no allocation.
pub const DEFAULT_LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000, 30_000_000,
];

struct HistogramCore {
    /// Inclusive upper bounds (`value <= bound` lands in the bucket); the
    /// final overflow bucket (`+Inf`) is `buckets.last()`.
    boundaries: Vec<u64>,
    /// `boundaries.len() + 1` per-bucket (non-cumulative) counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle. Recording is a short bounded scan plus
/// three relaxed atomic adds — no locks, no allocation.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        let core = &self.0;
        let slot = core
            .boundaries
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(core.boundaries.len());
        core.buckets[slot].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds; the overflow (`+Inf`) bucket is implicit.
    pub boundaries: Vec<u64>,
    /// Per-bucket (non-cumulative) counts, `boundaries.len() + 1` entries —
    /// the last is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A point-in-time copy of every metric in a [`Registry`]. `BTreeMap`s keep
/// every rendering deterministic.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Name-keyed handle tables, sharded by name hash so concurrent registration
/// from many worker threads never contends on one lock. Handles are `Arc`s:
/// once resolved, recording bypasses the shard entirely.
struct Shard {
    counters: Mutex<HashMap<String, Counter>>,
    gauges: Mutex<HashMap<String, Gauge>>,
    histograms: Mutex<HashMap<String, Histogram>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: Mutex::new(HashMap::new()),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
        }
    }
}

const SHARDS: usize = 16;

/// The telemetry registry (see the crate docs). One [`crate::global`]
/// instance serves the whole process; tests build their own with an
/// injectable clock.
pub struct Registry {
    shards: Vec<Shard>,
    clock: Arc<dyn Clock>,
    /// Fast-path flag mirroring `trace.is_some()`, so span drops skip the
    /// mutex entirely when no sink is installed.
    trace_enabled: AtomicBool,
    trace: Mutex<Option<Box<dyn Write + Send>>>,
    next_span_id: AtomicU64,
}

/// FNV-1a, the workspace's standard dependency-free hash.
fn shard_of(name: &str) -> usize {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &byte in name.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    (hash as usize) % SHARDS
}

/// Locks ignoring poisoning: metrics must never propagate a panic from an
/// unrelated thread, and every guarded value is valid at all times.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Registry {
    /// A registry on the production [`MonotonicClock`].
    pub fn new() -> Registry {
        Registry::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry on an injected clock (deterministic tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Registry {
        Registry {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            clock,
            trace_enabled: AtomicBool::new(false),
            trace: Mutex::new(None),
            next_span_id: AtomicU64::new(1),
        }
    }

    /// The registry's current time, microseconds since its clock's epoch.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The counter named `name`, created (at zero) on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let shard = &self.shards[shard_of(name)];
        lock(&shard.counters)
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let shard = &self.shards[shard_of(name)];
        lock(&shard.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The histogram named `name` with the default latency buckets, created
    /// on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, DEFAULT_LATENCY_BUCKETS_US)
    }

    /// The histogram named `name`; `boundaries` (inclusive upper bounds,
    /// strictly increasing) apply only on first creation — an existing
    /// histogram keeps the buckets it was born with.
    pub fn histogram_with(&self, name: &str, boundaries: &[u64]) -> Histogram {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        let shard = &self.shards[shard_of(name)];
        lock(&shard.histograms)
            .entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramCore {
                    boundaries: boundaries.to_vec(),
                    buckets: (0..=boundaries.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Opens an RAII span (see [`crate::span`]). The registry reference must
    /// be `'static` because the span records into it on drop; the global
    /// registry is, and test registries are `Box::leak`ed.
    pub fn span(&'static self, name: &'static str) -> Span {
        Span::open(self, name)
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Installs (or removes, with `None`) the JSONL trace sink. While a sink
    /// is installed every span close and [`Registry::trace_event`] appends
    /// one JSON object line; with none, tracing costs one atomic load.
    pub fn set_trace(&self, sink: Option<Box<dyn Write + Send>>) {
        let mut guard = lock(&self.trace);
        self.trace_enabled.store(sink.is_some(), Ordering::SeqCst);
        *guard = sink;
    }

    /// Whether a trace sink is installed.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled.load(Ordering::Relaxed)
    }

    /// Flushes the trace sink, if any.
    pub fn flush_trace(&self) {
        if let Some(sink) = lock(&self.trace).as_mut() {
            let _ = sink.flush();
        }
    }

    /// An RAII guard that flushes the trace sink when dropped — including
    /// during the unwind of a panic, so a `--trace FILE` run that aborts
    /// still leaves every span that was written on disk. Hold it for the
    /// lifetime of the traced work:
    ///
    /// ```
    /// let registry: &'static obs::Registry = obs::global();
    /// let _flush = registry.flush_guard();
    /// // … traced work; the sink is flushed however this scope exits.
    /// ```
    pub fn flush_guard(&'static self) -> FlushGuard {
        FlushGuard { registry: self }
    }

    /// Emits one structured heartbeat event (kind `"event"`) into the trace
    /// sink, if one is installed: `fields` become a nested object. Keys are
    /// rendered sorted, so a test-clock trace is byte-deterministic.
    pub fn trace_event(&self, name: &str, fields: &[(&str, u64)]) {
        if !self.trace_enabled() {
            return;
        }
        let mut sorted: Vec<(&str, u64)> = fields.to_vec();
        sorted.sort_unstable_by_key(|(k, _)| *k);
        let mut line = String::with_capacity(96);
        line.push_str("{\"fields\":{");
        for (i, (key, value)) in sorted.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_json_str(&mut line, key);
            line.push(':');
            line.push_str(&value.to_string());
        }
        line.push_str("},\"kind\":\"event\",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(&format!(",\"ts_us\":{}}}", self.now_us()));
        self.write_trace_line(&line);
    }

    /// Appends one span-close event (kind `"span"`) to the trace sink.
    pub(crate) fn trace_span(
        &self,
        name: &str,
        id: u64,
        parent: Option<u64>,
        ts_us: u64,
        dur_us: u64,
    ) {
        if !self.trace_enabled() {
            return;
        }
        let mut line = String::with_capacity(96);
        line.push_str(&format!(
            "{{\"dur_us\":{dur_us},\"id\":{id},\"kind\":\"span\",\"name\":"
        ));
        push_json_str(&mut line, name);
        match parent {
            Some(p) => line.push_str(&format!(",\"parent\":{p}")),
            None => line.push_str(",\"parent\":null"),
        }
        line.push_str(&format!(",\"ts_us\":{ts_us}}}"));
        self.write_trace_line(&line);
    }

    fn write_trace_line(&self, line: &str) {
        if let Some(sink) = lock(&self.trace).as_mut() {
            let _ = writeln!(sink, "{line}");
        }
    }

    /// A point-in-time copy of every metric. Individual values are read with
    /// relaxed ordering — the snapshot is coherent per metric, not a global
    /// atomic cut (standard for scrape-style telemetry).
    pub fn snapshot(&self) -> Snapshot {
        let mut snapshot = Snapshot::default();
        for shard in &self.shards {
            for (name, counter) in lock(&shard.counters).iter() {
                snapshot.counters.insert(name.clone(), counter.get());
            }
            for (name, gauge) in lock(&shard.gauges).iter() {
                snapshot.gauges.insert(name.clone(), gauge.get());
            }
            for (name, histogram) in lock(&shard.histograms).iter() {
                let core = &histogram.0;
                snapshot.histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        boundaries: core.boundaries.clone(),
                        buckets: core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: core.count.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                    },
                );
            }
        }
        snapshot
    }
}

/// Flushes the owning [`Registry`]'s trace sink on drop (normal return *or*
/// panic unwind). Created by [`Registry::flush_guard`].
#[must_use = "the guard flushes on drop; binding it to `_` drops it immediately"]
pub struct FlushGuard {
    registry: &'static Registry,
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        self.registry.flush_trace();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Snapshot {
    /// Renders the snapshot as one deterministic JSON object —
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}` with sorted keys and
    /// integer values, parseable by the workspace's `wire::Json`. Histogram
    /// buckets are per-bucket counts (`le:null` is the overflow bucket).
    pub fn to_json_text(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(":{\"buckets\":[");
            for (slot, count) in hist.buckets.iter().enumerate() {
                if slot > 0 {
                    out.push(',');
                }
                match hist.boundaries.get(slot) {
                    Some(bound) => out.push_str(&format!("{{\"count\":{count},\"le\":{bound}}}")),
                    None => out.push_str(&format!("{{\"count\":{count},\"le\":null}}")),
                }
            }
            out.push_str(&format!(
                "],\"count\":{},\"sum\":{}}}",
                hist.count, hist.sum
            ));
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# TYPE` lines, `effpi_`-prefixed sanitised names, and **cumulative**
    /// histogram buckets with `le` labels (per the format's contract),
    /// ending in `+Inf`, `_sum` and `_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (slot, count) in hist.buckets.iter().enumerate() {
                cumulative += count;
                match hist.boundaries.get(slot) {
                    Some(bound) => {
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                    }
                    None => {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    }
                }
            }
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_count {}\n", hist.count));
        }
        out
    }
}

/// `effpi_`-prefixes and sanitises a metric name for the Prometheus format
/// (`[a-zA-Z0-9_:]` only; anything else becomes `_`).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("effpi_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_handles() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("hits").get(), 3);

        let g = registry.gauge("depth");
        g.set(7);
        registry.gauge("depth").set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_boundaries_bucket_inclusively() {
        let registry = Registry::new();
        let h = registry.histogram_with("lat", &[10, 100, 1000]);
        // Exactly on a bound lands in that bucket (le semantics)...
        h.record(10);
        // ...one past it lands in the next...
        h.record(11);
        // ...zero in the first, and an overflow past the last bound.
        h.record(0);
        h.record(1001);
        let snap = registry.snapshot();
        let lat = &snap.histograms["lat"];
        assert_eq!(lat.buckets, vec![2, 1, 0, 1]);
        assert_eq!(lat.count, 4);
        assert_eq!(lat.sum, 10 + 11 + 1001);
    }

    #[test]
    fn histogram_keeps_birth_buckets_on_reregistration() {
        let registry = Registry::new();
        registry.histogram_with("h", &[5]).record(3);
        let again = registry.histogram_with("h", &[1, 2, 3]);
        again.record(4);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["h"].boundaries, vec![5]);
        assert_eq!(snap.histograms["h"].buckets, vec![2, 0]);
    }

    #[test]
    fn default_buckets_cover_the_latency_range_in_order() {
        assert!(DEFAULT_LATENCY_BUCKETS_US.windows(2).all(|w| w[0] < w[1]));
        let registry = Registry::new();
        let h = registry.histogram("span_x_us");
        h.record(0);
        h.record(u64::MAX);
        let snap = registry.snapshot();
        let x = &snap.histograms["span_x_us"];
        assert_eq!(x.buckets.len(), DEFAULT_LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(x.buckets[0], 1, "0 lands in the first bucket");
        assert_eq!(*x.buckets.last().unwrap(), 1, "MAX lands in +Inf");
    }

    #[test]
    fn prometheus_buckets_are_cumulative_json_buckets_are_not() {
        let registry = Registry::new();
        let h = registry.histogram_with("lat", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["lat"].buckets, vec![1, 1, 1]);
        let text = snap.to_prometheus_text();
        assert!(text.contains("effpi_lat_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("effpi_lat_bucket{le=\"100\"} 2\n"), "{text}");
        assert!(text.contains("effpi_lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("effpi_lat_sum 555\n"), "{text}");
        assert!(text.contains("effpi_lat_count 3\n"), "{text}");
    }

    #[test]
    fn json_text_is_sorted_and_integer_valued() {
        let registry = Registry::new();
        registry.counter("b_total").add(2);
        registry.counter("a_total").add(1);
        registry.gauge("g").set(3);
        let text = registry.snapshot().to_json_text();
        assert_eq!(
            text,
            "{\"counters\":{\"a_total\":1,\"b_total\":2},\"gauges\":{\"g\":3},\"histograms\":{}}"
        );
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        assert_eq!(
            prometheus_name("explore.progress"),
            "effpi_explore_progress"
        );
        assert_eq!(prometheus_name("ok_name"), "effpi_ok_name");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("n");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 40_000);
    }
}

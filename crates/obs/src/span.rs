//! RAII spans and the per-request phase collector.
//!
//! A [`Span`] times one named phase: opening reads the registry clock and
//! pushes the span onto a thread-local nesting stack (so trace events carry
//! parent ids); dropping records the elapsed microseconds into the
//! `span_<name>_us` histogram, notes the phase in the thread's active
//! [`phases`] collector (if any), and emits a JSONL trace event when the
//! registry has a trace sink installed.

use std::cell::RefCell;

use crate::registry::{Histogram, Registry};

thread_local! {
    /// The stack of open span ids on this thread (for parent attribution).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open phase timer; closes (and records) on drop.
pub struct Span {
    registry: &'static Registry,
    name: &'static str,
    histogram: Histogram,
    id: u64,
    parent: Option<u64>,
    start_us: u64,
}

impl Span {
    pub(crate) fn open(registry: &'static Registry, name: &'static str) -> Span {
        let id = registry.next_span_id();
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        let mut hist_name = String::with_capacity(name.len() + 8);
        hist_name.push_str("span_");
        hist_name.push_str(name);
        hist_name.push_str("_us");
        Span {
            registry,
            name,
            histogram: registry.histogram(&hist_name),
            id,
            parent,
            start_us: registry.now_us(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Microseconds elapsed since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.registry.now_us().saturating_sub(self.start_us)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.elapsed_us();
        self.histogram.record(dur_us);
        phases::note(self.name, dur_us);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are values; drop order can interleave under early returns,
            // so remove *this* id rather than assuming it is on top.
            if let Some(at) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(at);
            }
        });
        self.registry
            .trace_span(self.name, self.id, self.parent, self.start_us, dur_us);
    }
}

/// The per-request phase breakdown: wrap a request in [`collect`](phases::collect)
/// and every span closed on the thread inside it is aggregated here by name.
pub mod phases {
    use std::cell::RefCell;

    thread_local! {
        /// A stack of active collectors (collections nest; spans feed the
        /// innermost one).
        static COLLECTORS: RefCell<Vec<Vec<(&'static str, u64)>>> =
            const { RefCell::new(Vec::new()) };
    }

    /// An aggregated per-request phase breakdown, in first-seen order.
    #[derive(Clone, PartialEq, Eq, Debug, Default)]
    pub struct Phases {
        entries: Vec<(&'static str, u64)>,
    }

    impl Phases {
        /// `(phase name, total microseconds)` pairs, first-seen order.
        pub fn entries(&self) -> &[(&'static str, u64)] {
            &self.entries
        }

        /// Sum of all phase durations, microseconds.
        pub fn total_us(&self) -> u64 {
            self.entries.iter().map(|(_, us)| us).sum()
        }

        /// Whether nothing was recorded.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// A compact single-line rendering — `parse:120us explore:3ms …` —
        /// for log lines.
        pub fn to_log_fragment(&self) -> String {
            let mut out = String::new();
            for (i, (name, us)) in self.entries.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(name);
                out.push(':');
                out.push_str(&format_us(*us));
            }
            out
        }

        /// A deterministic JSON object — `{"explore_us":3120,"parse_us":120}`
        /// (keys sorted) — for response frames and structured logs.
        pub fn to_json_text(&self) -> String {
            let mut sorted: Vec<(&'static str, u64)> = self.entries.clone();
            sorted.sort_unstable_by_key(|(name, _)| *name);
            let mut out = String::with_capacity(64);
            out.push('{');
            for (i, (name, us)) in sorted.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::registry::push_json_str(&mut out, &format!("{name}_us"));
                out.push(':');
                out.push_str(&us.to_string());
            }
            out.push('}');
            out
        }
    }

    /// Renders microseconds human-readably (`87us`, `1.2ms`, `3.45s`).
    pub fn format_us(us: u64) -> String {
        if us < 1_000 {
            format!("{us}us")
        } else if us < 1_000_000 {
            format!("{:.1}ms", us as f64 / 1_000.0)
        } else {
            format!("{:.2}s", us as f64 / 1_000_000.0)
        }
    }

    /// Runs `f` with a fresh collector active on this thread and returns its
    /// result alongside the aggregated breakdown of every span that closed
    /// inside it. Collections nest: an inner `collect` captures its own spans
    /// and the outer one does not see them.
    pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Phases) {
        COLLECTORS.with(|c| c.borrow_mut().push(Vec::new()));
        // A panic in `f` must not leave the collector stacked; use a guard.
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                COLLECTORS.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let result = {
            let _guard = Guard;
            let result = f();
            // Take the samples before the guard pops the collector.
            let samples = COLLECTORS.with(|c| std::mem::take(c.borrow_mut().last_mut().unwrap()));
            (result, samples)
        };
        let (result, samples) = result;
        let mut phases = Phases::default();
        for (name, us) in samples {
            match phases.entries.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += us,
                None => phases.entries.push((name, us)),
            }
        }
        (result, phases)
    }

    /// Adds a closed span's duration to the innermost active collector, if
    /// any. No-op (one thread-local read) otherwise.
    pub(crate) fn note(name: &'static str, us: u64) {
        COLLECTORS.with(|c| {
            if let Some(top) = c.borrow_mut().last_mut() {
                top.push((name, us));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::phases;
    use crate::registry::{Registry, TestClock};
    use std::sync::Arc;

    fn leaked(clock: Arc<TestClock>) -> &'static Registry {
        Box::leak(Box::new(Registry::with_clock(clock)))
    }

    #[test]
    fn spans_record_into_their_histogram() {
        let clock = Arc::new(TestClock::new());
        let registry = leaked(clock.clone());
        {
            let span = registry.span("parse");
            clock.advance_us(250);
            assert_eq!(span.elapsed_us(), 250);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["span_parse_us"].count, 1);
        assert_eq!(snap.histograms["span_parse_us"].sum, 250);
    }

    #[test]
    fn nested_spans_attribute_parents_in_the_trace() {
        let clock = Arc::new(TestClock::new());
        let registry = leaked(clock.clone());
        let (buffer, sink) = shared_buffer();
        registry.set_trace(Some(Box::new(sink)));
        {
            let _outer = registry.span("verify");
            clock.advance_us(10);
            {
                let _inner = registry.span("explore");
                clock.advance_us(5);
            }
            clock.advance_us(1);
        }
        registry.set_trace(None);
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        // The inner span closes (and is written) first, pointing at the outer.
        assert_eq!(
            lines[0],
            "{\"dur_us\":5,\"id\":2,\"kind\":\"span\",\"name\":\"explore\",\"parent\":1,\"ts_us\":10}"
        );
        assert_eq!(
            lines[1],
            "{\"dur_us\":16,\"id\":1,\"kind\":\"span\",\"name\":\"verify\",\"parent\":null,\"ts_us\":0}"
        );
    }

    #[test]
    fn trace_events_render_sorted_fields() {
        let clock = Arc::new(TestClock::new());
        let registry = leaked(clock.clone());
        let (buffer, sink) = shared_buffer();
        registry.set_trace(Some(Box::new(sink)));
        clock.set_us(42);
        registry.trace_event("explore.progress", &[("states", 100), ("frontier", 7)]);
        registry.set_trace(None);
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"fields\":{\"frontier\":7,\"states\":100},\"kind\":\"event\",\
             \"name\":\"explore.progress\",\"ts_us\":42}\n"
        );
    }

    #[test]
    fn collect_aggregates_by_name_and_nests() {
        let clock = Arc::new(TestClock::new());
        let registry = leaked(clock.clone());
        let ((), outer) = phases::collect(|| {
            {
                let _s = registry.span("probe");
                clock.advance_us(10);
            }
            {
                let _s = registry.span("probe");
                clock.advance_us(7);
            }
            let ((), inner) = phases::collect(|| {
                let _s = registry.span("hidden");
                clock.advance_us(3);
            });
            assert_eq!(inner.entries(), &[("hidden", 3)]);
        });
        assert_eq!(outer.entries(), &[("probe", 17)]);
        assert_eq!(outer.total_us(), 17);
        assert_eq!(outer.to_json_text(), "{\"probe_us\":17}");
        assert_eq!(outer.to_log_fragment(), "probe:17us");
    }

    #[test]
    fn format_us_picks_sensible_units() {
        assert_eq!(phases::format_us(87), "87us");
        assert_eq!(phases::format_us(1_200), "1.2ms");
        assert_eq!(phases::format_us(3_450_000), "3.45s");
    }

    /// A `Write` handle over a shared byte buffer.
    fn shared_buffer() -> (
        Arc<std::sync::Mutex<Vec<u8>>>,
        impl std::io::Write + Send + 'static,
    ) {
        struct SharedSink(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buffer = Arc::new(std::sync::Mutex::new(Vec::new()));
        (buffer.clone(), SharedSink(buffer))
    }
}

//! **obs** — dependency-free telemetry for the effpi workspace.
//!
//! The ROADMAP's north star is a daemon that runs for months under heavy
//! traffic; this crate is the instrument panel it reads its own behaviour
//! from. Three layers, all zero-dependency and `O(1)` on the hot path:
//!
//! * **Metrics** ([`Registry`]): process-wide named [`Counter`]s, [`Gauge`]s
//!   and fixed-bucket latency [`Histogram`]s. Handle *registration* goes
//!   through a lock-sharded name table; *recording* is a single atomic
//!   operation on a pre-resolved handle — safe to call from the exploration
//!   hot loop. A point-in-time [`Snapshot`] renders deterministically to
//!   wire-compatible JSON ([`Snapshot::to_json_text`]) and to a
//!   Prometheus-style text exposition ([`Snapshot::to_prometheus_text`]).
//!
//! * **Spans** ([`span`]): RAII phase timers. `let _s = obs::span("explore");`
//!   records the elapsed time into the `span_explore_us` histogram on drop,
//!   feeds any active per-request [`phases`] collector, and — when a trace
//!   sink is installed ([`Registry::set_trace`]) — emits one structured JSONL
//!   event with parent/child nesting (spans know their enclosing span).
//!
//! * **Phases** ([`phases::collect`]): a thread-local per-request collector.
//!   Wrap a request in `phases::collect(|| …)` and every span closed on that
//!   thread inside the closure is aggregated into a [`phases::Phases`]
//!   breakdown — the `--profile` table and the serve per-request log line.
//!
//! Time comes from an injectable [`Clock`] so tests pin byte-exact golden
//! renderings: the default [`MonotonicClock`] counts microseconds from
//! registry creation, and [`TestClock`] is advanced by hand.
//!
//! ```
//! use std::sync::Arc;
//!
//! let clock = Arc::new(obs::TestClock::new());
//! let registry: &'static obs::Registry =
//!     Box::leak(Box::new(obs::Registry::with_clock(clock.clone())));
//!
//! registry.counter("requests_total").inc();
//! {
//!     let _span = registry.span("parse");
//!     clock.advance_us(120);
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["requests_total"], 1);
//! assert_eq!(snapshot.histograms["span_parse_us"].sum, 120);
//! assert!(snapshot.to_prometheus_text().contains("effpi_requests_total 1"));
//! ```
//!
//! Everything in the workspace records into one [`global`] registry by
//! default; tests that need isolation build (and leak) their own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod span;

pub use registry::{
    Clock, Counter, FlushGuard, Gauge, Histogram, HistogramSnapshot, MonotonicClock, Registry,
    Snapshot, TestClock, DEFAULT_LATENCY_BUCKETS_US,
};
pub use span::{phases, Span};

use std::sync::OnceLock;

/// The process-wide registry every production call site records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Opens an RAII span on the [`global`] registry: on drop, the elapsed time
/// lands in the `span_<name>_us` histogram, the active [`phases`] collector
/// (if any), and the trace sink (if one is installed).
pub fn span(name: &'static str) -> Span {
    global().span(name)
}

//! Golden tests pinning the two exposition renderings byte-for-byte.
//!
//! The clock is injected ([`obs::TestClock`]), every metric is recorded by
//! hand, and the registry is fresh — so both the JSON text and the
//! Prometheus text are fully deterministic and any formatting drift (key
//! order, bucket cumulation, name sanitisation, prefixing) fails here
//! instead of surfacing as a broken dashboard.

use std::sync::Arc;

use obs::{Registry, TestClock};

fn scripted_registry() -> (&'static Registry, Arc<TestClock>) {
    let clock = Arc::new(TestClock::new());
    let registry: &'static Registry = Box::leak(Box::new(Registry::with_clock(clock.clone())));

    registry.counter("requests_total").add(3);
    registry.counter("cache_hits").add(2);
    registry.gauge("explore_frontier").set(17);
    registry.gauge("explore_states").set(4200);

    let latency = registry.histogram_with("span_verify_us", &[100, 1_000, 10_000]);
    latency.record(50); // le=100
    latency.record(100); // le=100 (inclusive bound)
    latency.record(900); // le=1000
    latency.record(20_000); // +Inf

    // A span driven by the test clock, nested to exercise parent tracking.
    {
        let _outer = registry.span("request");
        clock.advance_us(40);
        {
            let _inner = registry.span("parse");
            clock.advance_us(10);
        }
        clock.advance_us(2);
    }
    (registry, clock)
}

#[test]
fn metrics_json_rendering_is_pinned() {
    let (registry, _clock) = scripted_registry();
    let json = registry.snapshot().to_json_text();
    assert_eq!(
        json,
        concat!(
            "{\"counters\":{\"cache_hits\":2,\"requests_total\":3},",
            "\"gauges\":{\"explore_frontier\":17,\"explore_states\":4200},",
            "\"histograms\":{",
            "\"span_parse_us\":{\"buckets\":[",
            "{\"count\":1,\"le\":50},{\"count\":0,\"le\":100},{\"count\":0,\"le\":250},",
            "{\"count\":0,\"le\":500},{\"count\":0,\"le\":1000},{\"count\":0,\"le\":2500},",
            "{\"count\":0,\"le\":5000},{\"count\":0,\"le\":10000},{\"count\":0,\"le\":25000},",
            "{\"count\":0,\"le\":50000},{\"count\":0,\"le\":100000},{\"count\":0,\"le\":250000},",
            "{\"count\":0,\"le\":500000},{\"count\":0,\"le\":1000000},{\"count\":0,\"le\":5000000},",
            "{\"count\":0,\"le\":30000000},{\"count\":0,\"le\":null}],\"count\":1,\"sum\":10},",
            "\"span_request_us\":{\"buckets\":[",
            "{\"count\":0,\"le\":50},{\"count\":1,\"le\":100},{\"count\":0,\"le\":250},",
            "{\"count\":0,\"le\":500},{\"count\":0,\"le\":1000},{\"count\":0,\"le\":2500},",
            "{\"count\":0,\"le\":5000},{\"count\":0,\"le\":10000},{\"count\":0,\"le\":25000},",
            "{\"count\":0,\"le\":50000},{\"count\":0,\"le\":100000},{\"count\":0,\"le\":250000},",
            "{\"count\":0,\"le\":500000},{\"count\":0,\"le\":1000000},{\"count\":0,\"le\":5000000},",
            "{\"count\":0,\"le\":30000000},{\"count\":0,\"le\":null}],\"count\":1,\"sum\":52},",
            "\"span_verify_us\":{\"buckets\":[",
            "{\"count\":2,\"le\":100},{\"count\":1,\"le\":1000},",
            "{\"count\":0,\"le\":10000},{\"count\":1,\"le\":null}],",
            "\"count\":4,\"sum\":21050}",
            "}}"
        )
    );
}

#[test]
fn prometheus_text_rendering_is_pinned() {
    let (registry, _clock) = scripted_registry();
    let text = registry.snapshot().to_prometheus_text();
    let expected = concat!(
        "# TYPE effpi_cache_hits counter\n",
        "effpi_cache_hits 2\n",
        "# TYPE effpi_requests_total counter\n",
        "effpi_requests_total 3\n",
        "# TYPE effpi_explore_frontier gauge\n",
        "effpi_explore_frontier 17\n",
        "# TYPE effpi_explore_states gauge\n",
        "effpi_explore_states 4200\n",
        "# TYPE effpi_span_parse_us histogram\n",
        "effpi_span_parse_us_bucket{le=\"50\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"100\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"250\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"500\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"1000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"2500\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"5000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"10000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"25000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"50000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"100000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"250000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"500000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"1000000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"5000000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"30000000\"} 1\n",
        "effpi_span_parse_us_bucket{le=\"+Inf\"} 1\n",
        "effpi_span_parse_us_sum 10\n",
        "effpi_span_parse_us_count 1\n",
        "# TYPE effpi_span_request_us histogram\n",
        "effpi_span_request_us_bucket{le=\"50\"} 0\n",
        "effpi_span_request_us_bucket{le=\"100\"} 1\n",
        "effpi_span_request_us_bucket{le=\"250\"} 1\n",
        "effpi_span_request_us_bucket{le=\"500\"} 1\n",
        "effpi_span_request_us_bucket{le=\"1000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"2500\"} 1\n",
        "effpi_span_request_us_bucket{le=\"5000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"10000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"25000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"50000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"100000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"250000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"500000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"1000000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"5000000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"30000000\"} 1\n",
        "effpi_span_request_us_bucket{le=\"+Inf\"} 1\n",
        "effpi_span_request_us_sum 52\n",
        "effpi_span_request_us_count 1\n",
        "# TYPE effpi_span_verify_us histogram\n",
        "effpi_span_verify_us_bucket{le=\"100\"} 2\n",
        "effpi_span_verify_us_bucket{le=\"1000\"} 3\n",
        "effpi_span_verify_us_bucket{le=\"10000\"} 3\n",
        "effpi_span_verify_us_bucket{le=\"+Inf\"} 4\n",
        "effpi_span_verify_us_sum 21050\n",
        "effpi_span_verify_us_count 4\n",
    );
    assert_eq!(text, expected);
}

#[test]
fn the_two_renderings_describe_the_same_snapshot() {
    let (registry, _clock) = scripted_registry();
    let snapshot = registry.snapshot();
    let json = snapshot.to_json_text();
    let prom = snapshot.to_prometheus_text();
    // Every counter and gauge value appears in both renderings.
    for (name, value) in snapshot.counters.iter().chain(snapshot.gauges.iter()) {
        assert!(
            json.contains(&format!("\"{name}\":{value}")),
            "{name} in JSON"
        );
        assert!(
            prom.contains(&format!("effpi_{name} {value}")),
            "{name} in text"
        );
    }
    // Histogram totals agree.
    for (name, hist) in &snapshot.histograms {
        assert!(json.contains(&format!("\"count\":{}", hist.count)));
        assert!(prom.contains(&format!("effpi_{name}_count {}", hist.count)));
    }
}

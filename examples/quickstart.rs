//! Quickstart: the three things this library does, in twenty lines each.
//!
//! 1. **Type-check a message-passing program** against a behavioural type
//!    (the paper's Step 1).
//! 2. **Model-check the behavioural type** for safety/liveness properties
//!    (Step 2), which transfer to every program implementing it.
//! 3. **Run** message-passing processes on the Effpi-style runtime.
//!
//! Run with: `cargo run --example quickstart`

use effpi::{
    new_actor, EffpiRuntime, Msg, Policy, Proc, Property, Scheduler, Session, Term, Type, TypeEnv,
};

fn main() {
    // One Session is the entry point for both verification steps; configure
    // it once, reuse it for every check below.
    let session = Session::new();

    // -----------------------------------------------------------------
    // 1. Protocols as types, programs as terms.
    // -----------------------------------------------------------------
    // A protocol: on channel c, send an integer, then stop.
    //   T = o[c, int, Π()nil]
    let protocol = Type::out(Type::var("c"), Type::Int, Type::thunk(Type::Nil));
    // A program implementing it: send(c, 42, λ_.end), with c bound by a λ.
    let program = Term::lam(
        "c",
        Type::chan_io(Type::Int),
        Term::send(Term::var("c"), Term::int(42), Term::thunk(Term::End)),
    );
    let abstract_protocol = Type::pi("c", Type::chan_io(Type::Int), protocol);
    session
        .type_check_closed(&program, &abstract_protocol)
        .expect("the program follows the protocol");
    println!("[1] program implements  Π(c:cio[int]) o[c, int, Π()nil]");

    // A program that forgets the send does NOT implement it.
    let lazy = Term::lam("c", Type::chan_io(Type::Int), Term::End);
    assert!(session
        .type_check_closed(&lazy, &abstract_protocol)
        .is_err());
    println!("[1] forgetting the send is a type error — caught statically");

    // -----------------------------------------------------------------
    // 2. Type-level model checking.
    // -----------------------------------------------------------------
    // A forwarder protocol: forever receive on x, pass the value on to y.
    let env = TypeEnv::new()
        .bind("x", Type::chan_io(Type::Int))
        .bind("y", Type::chan_io(Type::Int));
    let forwarder = Type::rec(
        "t",
        Type::inp(
            Type::var("x"),
            Type::pi(
                "v",
                Type::Int,
                Type::out(
                    Type::var("y"),
                    Type::var("v"),
                    Type::thunk(Type::rec_var("t")),
                ),
            ),
        ),
    );
    let fwd = session
        .verify(&env, &forwarder, &Property::forwarding("x", "y"))
        .unwrap();
    let non_usage = session
        .verify(&env, &forwarder, &Property::non_usage(["x"]))
        .unwrap();
    println!(
        "[2] forwarding x→y: {} ({} states, {:?})",
        fwd.holds, fwd.states, fwd.duration
    );
    println!("[2] never outputs on x: {}", non_usage.holds);

    // -----------------------------------------------------------------
    // 3. Running processes on the Effpi-style runtime.
    // -----------------------------------------------------------------
    let (echo_ref, echo_mb) = new_actor();
    let (client_ref, client_mb) = new_actor();
    let echo = echo_mb.read(|msg| match msg {
        Msg::Pair(n, reply) => match (n.as_int(), reply.as_chan()) {
            (Some(n), Some(reply)) => Proc::send_end(&reply, Msg::Int(n + 1)),
            _ => Proc::End,
        },
        _ => Proc::End,
    });
    let client = echo_ref.tell(
        Msg::pair(Msg::Int(41), Msg::Chan(client_ref.channel())),
        move || {
            client_mb.read(|reply| {
                println!("[3] echo replied: {reply}");
                Proc::End
            })
        },
    );
    let stats = EffpiRuntime::new(Policy::ChannelFsm).run(vec![echo, client]);
    println!(
        "[3] runtime: {} processes, {} messages, {:?}",
        stats.processes_spawned, stats.messages_sent, stats.duration
    );
}

//! The paper's motivating example (§1, Fig. 1): a payment service that must
//! audit every accepted payment.
//!
//! This example walks through the full workflow:
//!
//! 1. the behavioural type (the specification) and two implementations — a
//!    correct one and one with the "forgot to audit" bug — are type-checked,
//!    catching the bug at "compile time";
//! 2. the specification, composed with an auditor and clients, is
//!    model-checked for the Fig. 7 properties;
//! 3. the correct service is executed as actors on the Effpi-style runtime.
//!
//! Run with: `cargo run --example payment_audit`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use effpi::protocols::payment;
use effpi::{forever, new_actor, ActorRef, EffpiRuntime, Msg, Policy, Proc, Scheduler, Session};
use lambdapi::examples;

fn main() {
    // One configured Session drives both verification steps.
    let session = Session::builder().max_states(100_000).build();
    step1_typecheck(&session);
    step2_model_check(&session);
    step3_run();
}

/// Step 1: protocol conformance by type checking.
fn step1_typecheck(session: &Session) {
    println!("== Step 1: type-checking implementations against the specification ==");

    // The audited payment service of Fig. 1 implements its specification.
    session
        .type_check_closed(&examples::payment_term(), &examples::tpayment_type())
        .expect("the audited service implements the audited specification");
    println!("payment_term : Tpayment           ... ok");

    // The buggy behaviour (answer "Accepted" without auditing) is captured by
    // the *unaudited* specification — and that specification does not refine
    // the audited one, so any implementation with the §1 bug is rejected when
    // checked against the audited spec.
    let env = effpi::TypeEnv::new();
    assert!(!session.checker().is_subtype(
        &env,
        &examples::tpayment_unaudited_type(),
        &examples::tpayment_type()
    ));
    println!("unaudited behaviour vs audited spec ... rejected (as it should be)");
}

/// Step 2: verify the composed protocol (service + auditor + clients).
fn step2_model_check(session: &Session) {
    println!("\n== Step 2: type-level model checking of the composed protocol ==");
    let scenario = payment::payment_with_clients(3);
    let report = session.run_scenario(&scenario);
    print!("{report}");
    assert!(report.first_error().is_none(), "verification must complete");
    let verdicts = report.verdicts();
    // The service answers every client...
    assert!(verdicts[5], "responsiveness must hold");
    // ...but rejected payments are (correctly) not forwarded to the auditor,
    // so the unconditional forwarding property fails.
    assert!(!verdicts[2]);
    println!("  {}", report.summary());
}

/// Step 3: run the payment service as actors.
fn step3_run() {
    println!("\n== Step 3: running the service on the Effpi-style runtime ==");
    let audited = Arc::new(AtomicU64::new(0));
    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));

    let (service_ref, service_mb) = new_actor();
    let (auditor_ref, auditor_mb) = new_actor();

    // The auditor: count audit notifications forever (stop on Unit).
    let auditor = {
        let audited = Arc::clone(&audited);
        forever(auditor_mb, move |msg, again| match msg {
            Msg::Int(_) => {
                audited.fetch_add(1, Ordering::SeqCst);
                again()
            }
            _ => Proc::End,
        })
    };

    // The payment service of Fig. 1: reject amounts above 42000, otherwise
    // audit then accept.
    let service = {
        let auditor_ref = auditor_ref.clone();
        forever(service_mb, move |msg, again| match msg {
            Msg::Pair(amount, reply_to) => {
                let amount = amount.as_int().unwrap_or(0);
                let reply = ActorRef::from_channel(reply_to.as_chan().expect("reply channel"));
                if amount > 42_000 {
                    reply.tell(Msg::Str("Rejected: too high!"), again)
                } else {
                    let auditor_ref = auditor_ref.clone();
                    auditor_ref.tell(Msg::Int(amount), move || {
                        reply.tell(Msg::Str("Accepted"), again)
                    })
                }
            }
            _ => auditor_ref.tell_end(Msg::Unit), // shut the auditor down too
        })
    };

    // Ten clients, half of them over the limit.
    let mut procs = vec![service, auditor];
    let amounts: Vec<i64> = (1..=10)
        .map(|i| if i % 2 == 0 { 100_000 } else { i * 1000 })
        .collect();
    let done = Arc::new(AtomicU64::new(0));
    let n_clients = amounts.len() as u64;
    for amount in amounts {
        let (client_ref, client_mb) = new_actor();
        let accepted = Arc::clone(&accepted);
        let rejected = Arc::clone(&rejected);
        let done = Arc::clone(&done);
        let service_ref = service_ref.clone();
        let stop_ref = service_ref.clone();
        procs.push(service_ref.tell(
            Msg::pair(Msg::Int(amount), Msg::Chan(client_ref.channel())),
            move || {
                client_mb.read(move |reply| {
                    match reply {
                        Msg::Str("Accepted") => accepted.fetch_add(1, Ordering::SeqCst),
                        _ => rejected.fetch_add(1, Ordering::SeqCst),
                    };
                    // The last client to finish shuts the service down.
                    if done.fetch_add(1, Ordering::SeqCst) + 1 == n_clients {
                        stop_ref.tell_end(Msg::Unit)
                    } else {
                        Proc::End
                    }
                })
            },
        ));
    }

    let stats = EffpiRuntime::new(Policy::Default).run(procs);
    println!(
        "  accepted: {}, rejected: {}, audited: {}",
        accepted.load(Ordering::SeqCst),
        rejected.load(Ordering::SeqCst),
        audited.load(Ordering::SeqCst)
    );
    println!(
        "  runtime: {} processes, {} messages, {:?}",
        stats.processes_spawned, stats.messages_sent, stats.duration
    );
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        audited.load(Ordering::SeqCst),
        "every accepted payment was audited"
    );
}

//! Higher-order interaction: sending and receiving *mobile code* (Ex. 3.4 and
//! Ex. 4.11 of the paper).
//!
//! A data-analysis server accepts custom filtering code from clients. The
//! behavioural type `Tm` constrains what the received code may do: it must
//! read one integer from each of its two input channels and forward one of
//! *those* values (nothing else) on its output channel, forever. The example
//! shows:
//!
//! * two legitimate filters (`m1`, `m2`) type-checking against `Tm`, and a
//!   forged filter (always outputs 42) being rejected;
//! * the model-checked guarantees that hold for *any* `Tm`-typed code;
//! * the whole system (server + client + producers) actually running under
//!   the λπ⩽ reduction semantics, with both filters.
//!
//! Run with: `cargo run --example mobile_code`

use effpi::protocols::mobile_code;
use effpi::{Reducer, Session, Term, Type};
use lambdapi::examples;

fn main() {
    println!("== The contract for mobile code: Tm ==");
    println!("{}", examples::tm_type());

    // ------------------------------------------------------------------
    // Type checking the mobile code (the server only accepts Tm-typed code).
    // ------------------------------------------------------------------
    let session = Session::builder().max_states(20_000).build();
    session
        .type_check_closed(&examples::m1_term(), &examples::tm_type())
        .map(|_| println!("\nm1 (forward first input)  : Tm ... ok"))
        .unwrap_or_else(|e| println!("\nm1: rejected ({e})"));
    session
        .type_check_closed(&examples::m2_term(), &examples::tm_type())
        .expect("m2 implements Tm");
    println!("m2 (forward the maximum)  : Tm ... ok");

    // A forged filter that ignores its inputs and always sends 42 does not
    // implement Tm: the payload type `int` is not a subtype of `x ∨ y`.
    let forged = forged_filter();
    assert!(session
        .type_check_closed(&forged, &examples::tm_type())
        .is_err());
    println!("forged (always send 42)   : Tm ... rejected");

    // ------------------------------------------------------------------
    // What the type alone guarantees (Ex. 4.11), for any code the server runs.
    // ------------------------------------------------------------------
    println!("\n== Model-checked guarantees for any Tm-typed code ==");
    let report = session.run_scenario(&mobile_code::mobile_code_scenario());
    assert!(report.first_error().is_none(), "verification must complete");
    print!("{report}");

    // ------------------------------------------------------------------
    // Running the full system under the λπ⩽ semantics.
    // ------------------------------------------------------------------
    println!("\n== Running the server with each filter (λπ⩽ reduction) ==");
    for (name, filter) in [("m1", examples::m1_term()), ("m2", examples::m2_term())] {
        let system = examples::mobile_code_system(filter);
        let result = Reducer::new().eval(&system, 5_000);
        println!(
            "  server + {name}: {} steps, safe = {}",
            result.steps,
            result.is_safe()
        );
        assert!(result.is_safe());
    }
}

/// A filter with the right shape but the wrong data flow: it always outputs a
/// constant instead of one of the received values.
fn forged_filter() -> Term {
    let body = Term::lam(
        "i1",
        Type::chan_in(Type::Int),
        Term::lam(
            "i2",
            Type::chan_in(Type::Int),
            Term::lam(
                "o",
                Type::chan_out(Type::Int),
                Term::recv(
                    Term::var("i1"),
                    Term::lam(
                        "x",
                        Type::Int,
                        Term::recv(
                            Term::var("i2"),
                            Term::lam(
                                "y",
                                Type::Int,
                                Term::send(
                                    Term::var("o"),
                                    Term::int(42),
                                    Term::thunk(Term::app_all(
                                        Term::var("forged"),
                                        [Term::var("i1"), Term::var("i2"), Term::var("o")],
                                    )),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    );
    Term::let_("forged", examples::tm_type(), body, Term::var("forged"))
}

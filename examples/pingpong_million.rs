//! Scale test for the runtime (§5.2): hundreds of thousands of lightweight
//! processes, in the spirit of the paper's claim that Effpi supports "highly
//! concurrent programs with millions of processes/actors".
//!
//! The example runs the fork-join (creation) and ping-pong Savina workloads at
//! increasing sizes on both Effpi-style schedulers, and — at a small size
//! only — on the thread-per-process baseline, to show the crossover that
//! Fig. 8 is about.
//!
//! Run with: `cargo run --release --example pingpong_million [max_processes]`

use effpi::{EffpiRuntime, Policy, ThreadRuntime};
use runtime::savina;

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    let default = EffpiRuntime::new(Policy::Default);
    let fsm = EffpiRuntime::new(Policy::ChannelFsm);
    let baseline = ThreadRuntime::with_small_stacks();

    println!("== fork-join (creation): spawn N processes, collect N signals ==");
    println!(
        "{:>10}  {:>22}  {:>22}",
        "N", "effpi-default", "effpi-channel-fsm"
    );
    let mut n = 1_000usize;
    while n <= max {
        let a = savina::fork_join_create(n)
            .run_on(&default)
            .expect("validated");
        let b = savina::fork_join_create(n).run_on(&fsm).expect("validated");
        println!(
            "{:>10}  {:>15.3?} ({:>4} peak)  {:>15.3?} ({:>4} peak)",
            n, a.duration, a.peak_live_processes, b.duration, b.peak_live_processes
        );
        n *= 10;
    }

    println!("\n== the same workload on the thread-per-process baseline ==");
    for n in [1_000usize, 4_000] {
        let stats = savina::fork_join_create(n)
            .run_on(&baseline)
            .expect("validated");
        println!(
            "{:>10}  {:?} ({} OS threads spawned)",
            n, stats.duration, stats.processes_spawned
        );
    }
    println!("(larger sizes are not attempted: one OS thread per process does not scale)");

    println!("\n== ping-pong pairs ==");
    for pairs in [1_000usize, 10_000, (max / 10).max(10_000)] {
        let stats = savina::ping_pong(pairs, 10)
            .run_on(&fsm)
            .expect("validated");
        println!(
            "{:>10} pairs  {:>10} messages  {:?}  ({:.0} msg/s)",
            pairs,
            stats.messages_sent,
            stats.duration,
            stats.throughput()
        );
    }
}

//! Dining philosophers: detecting a deadlock at the type level before ever
//! running the system (§6's locking/mutex protocols, measured in Fig. 9).
//!
//! Two table layouts are verified: one where every philosopher grabs the left
//! fork first (a circular wait — and thus a deadlock — is reachable), and one
//! where the last philosopher is left-handed (deadlock-free). The deadlocking
//! layout is rejected purely by inspecting the composed behavioural type; no
//! execution, testing or instrumentation is involved.
//!
//! Run with: `cargo run --example dining_philosophers [num_philosophers]`

use effpi::protocols::dining;
use effpi::Session;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("verifying dining-philosophers layouts with {n} seats\n");
    // One session, reused for both layouts.
    let session = Session::builder().max_states(200_000).build();
    for allow_deadlock in [true, false] {
        let scenario = dining::dining_philosophers(n, allow_deadlock);
        println!("-- {} --", scenario.name);
        let report = session.run_scenario(&scenario);
        match &report.error {
            None => {
                for p in &report.properties {
                    match &p.result {
                        Ok(o) => println!("   {o}"),
                        Err(e) => println!("   {e}"),
                    }
                }
                let deadlock_free = report.verdicts()[0];
                if allow_deadlock {
                    assert!(
                        !deadlock_free,
                        "the grab-left layout must be able to deadlock"
                    );
                    println!("   => deadlock detected at the type level\n");
                } else {
                    assert!(deadlock_free, "the left-handed layout must be safe");
                    println!("   => no deadlock possible; safe to deploy\n");
                }
            }
            Some(e) => {
                println!("   verification did not complete: {e}");
                println!(
                    "   (try a smaller table, e.g. `cargo run --example dining_philosophers 4`)\n"
                );
            }
        }
    }
}

//! Cross-crate integration tests for the correspondence between term
//! transitions and type transitions — the executable counterpart of
//! Theorem 4.4 (subject transition) and Theorem 4.5 (type fidelity).
//!
//! These tests exercise the whole pipeline: typing (`dbt-types`), the
//! open-term LTS and the type LTS (`lts`), on the paper's running examples.

use dbt_types::{Checker, TypeEnv};
use lambdapi::{examples, Name, Reducer, Term, Type};
use lts::{TermLts, TypeLts};

fn pingpong_env() -> TypeEnv {
    TypeEnv::new()
        .bind("y", Type::chan_io(Type::Str))
        .bind("z", Type::chan_io(Type::chan_out(Type::Str)))
}

/// Subject reduction (the workhorse behind Thm. 3.6 and Thm. 4.4 case 1):
/// every reduct of the closed ping-pong system stays typable.
#[test]
fn closed_pingpong_reducts_stay_typable() {
    let checker = Checker::new();
    let reducer = Reducer::new();
    let mut term = examples::ping_pong_main();
    checker.type_of_closed(&term).expect("initial term typable");
    let mut steps = 0;
    while let Some((next, _rule)) = reducer.step(&term) {
        checker
            .type_of_closed(&next)
            .unwrap_or_else(|e| panic!("untypable reduct after {steps} steps: {e}\n{next}"));
        term = next;
        steps += 1;
        assert!(steps < 500, "ping-pong should terminate quickly");
    }
    assert_eq!(term, Term::End);
}

/// The mobile-code system (higher-order communication) also enjoys subject
/// reduction along its whole execution prefix.
#[test]
fn mobile_code_reducts_stay_typable() {
    let checker = Checker::new();
    let reducer = Reducer::new();
    let mut term = examples::mobile_code_system(examples::m2_term());
    checker.type_of_closed(&term).expect("initial term typable");
    for _ in 0..120 {
        match reducer.step(&term) {
            Some((next, _)) => {
                checker
                    .type_of_closed(&next)
                    .unwrap_or_else(|e| panic!("untypable reduct: {e}"));
                term = next;
            }
            None => break,
        }
    }
}

/// Theorem 4.4, case 2 (shape check): when the open ping-pong term fires a
/// communication on a channel variable, the type fires a corresponding
/// τ[S,S'] synchronisation — first on z, then on the transmitted y.
#[test]
fn term_communications_have_matching_type_synchronisations() {
    let env = pingpong_env();
    let (term, ty) = examples::ping_pong_open();

    // Γ ⊢ t : T (Ex. 4.3).
    Checker::new()
        .check_term(&env, &term, &ty)
        .expect("Γ ⊢ sys y z : Tpp y z");

    let term_lts = TermLts::new(env.clone()).build(&term, 5_000);
    let type_lts = TypeLts::new(env).build(&ty, 5_000);

    for chan in ["z", "y"] {
        let name = Name::new(chan);
        let term_comm = term_lts.labels().any(|l| l.is_comm_on(&name));
        let type_comm = type_lts.labels().any(|l| {
            matches!(
                l,
                lts::TypeLabel::Comm { left, right }
                    if *left == Type::var(chan) && *right == Type::var(chan)
            )
        });
        assert!(term_comm, "term LTS must communicate on {chan}");
        assert!(
            type_comm,
            "type LTS must synchronise on {chan} (Thm. 4.4.2d)"
        );
    }
}

/// Theorem 4.5 (type fidelity), items 1–3, on the ponger: every output the
/// type can fire is matched by an output of the (productive) term, after
/// τ•-steps.
#[test]
fn type_outputs_are_realised_by_the_ponger_term() {
    let env = pingpong_env();
    let ty = examples::tpong_type().apply(&Type::var("z")).unwrap();
    let term = Term::app(examples::ponger_term(), Term::var("z"));
    Checker::new().check_term(&env, &term, &ty).expect("typing");

    let type_lts = TypeLts::new(env.clone()).build(&ty, 5_000);
    let term_lts = TermLts::new(env).build(&term, 5_000);

    // The type can input on z (with the environment variable y as payload) and
    // then output on y; the term can do the same.
    let type_inputs_on_z = type_lts.labels().any(|l| l.is_input_on(&Name::new("z")));
    let term_inputs_on_z = term_lts.labels().any(|l| l.is_input_on(&Name::new("z")));
    assert!(type_inputs_on_z && term_inputs_on_z);

    let type_outputs_on_y = type_lts.labels().any(|l| l.is_output_on(&Name::new("y")));
    let term_outputs_on_y = term_lts.labels().any(|l| l.is_output_on(&Name::new("y")));
    assert!(
        type_outputs_on_y,
        "Tpong z must offer an output on the received y"
    );
    assert!(
        term_outputs_on_y,
        "ponger z must realise that output (Thm. 4.5.1)"
    );
}

/// The over-approximation direction: the type LTS of Ex. 3.5's imprecise T2
/// has synchronisations that the precise T1 also has — subtyping only *adds*
/// behaviours, it never removes them.
#[test]
fn supertypes_over_approximate_behaviour() {
    let env = TypeEnv::new().bind("x", Type::chan_io(Type::Int));
    let t1 = Type::par(
        Type::out(Type::var("x"), Type::Int, Type::thunk(Type::Nil)),
        Type::inp(Type::var("x"), Type::pi("y", Type::Int, Type::Nil)),
    );
    let t2 = Type::par(
        Type::out(Type::chan_io(Type::Int), Type::Int, Type::thunk(Type::Nil)),
        Type::inp(Type::var("x"), Type::pi("y", Type::Int, Type::Nil)),
    );
    let checker = Checker::new();
    assert!(checker.is_subtype(&env, &t1, &t2));

    let builder = TypeLts::new(env);
    let lts1 = builder.build(&t1, 1_000);
    let lts2 = builder.build(&t2, 1_000);
    let comms = |lts: &lts::Lts<lambdapi::TyRef, lts::TypeLabel>| {
        lts.labels()
            .filter(|l| matches!(l, lts::TypeLabel::Comm { .. }))
            .count()
    };
    assert!(comms(&lts1) > 0);
    assert!(
        comms(&lts2) > 0,
        "the imprecise supertype still synchronises"
    );
}

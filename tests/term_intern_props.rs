//! Property suite for the term side of the hash-consing interner
//! (`lambdapi::intern::TermRef`) — the contract the open-term hot path
//! (id-hashing seen-sets, memoized successor lists, par-component
//! flattening, Arc-sharing substitution) rests on. Mirrors
//! `tests/type_intern_props.rs`.
//!
//! The central properties:
//!
//! * `intern(t1) == intern(t2)` **iff** `t1 == t2` — interning collapses
//!   exactly structural equality, nothing more, nothing less;
//! * reduction through [`Reducer::step_ref`] agrees step-for-step with the
//!   tree-based [`Reducer::step`] (term and base rule) — reduction is a pure
//!   function of the term, which is what makes memoizing it per `TermId`
//!   sound;
//! * memoized [`TermRef::par_components`] / [`TermRef::free_vars`] never
//!   change the component sequences / variable sets the plain functions
//!   produce;
//! * Arc-sharing substitution is semantically invisible: shadowing,
//!   free-variable accounting and untouched-subtree identity all hold.
//!
//! Cases come from a deterministic generator (the offline stand-in for
//! proptest, as in the sibling suites), seeded SplitMix64 — exact
//! reproduction by seed.

use std::sync::Arc;

use lambdapi::{par_components, BinOp, Name, Reducer, Term, TermRef, Type};

const CASES: u64 = 128;

/// SplitMix64 — same deterministic PRNG as the sibling property suites.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Open process terms over the channel variables `x`/`y` — parallel
/// compositions, sends, receives, conditionals, so both the flattening and
/// the reducer have real work to do.
fn arb_process_term(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(5) == 0 {
        return Term::End;
    }
    let d = depth - 1;
    let chan = if rng.bool() { "x" } else { "y" };
    match rng.below(6) {
        0 => Term::send(
            Term::var(chan),
            Term::int(rng.below(4) as i64),
            Term::thunk(arb_process_term(rng, d)),
        ),
        1 => Term::recv(
            Term::var(chan),
            Term::lam("v", Type::Int, arb_process_term(rng, d)),
        ),
        2 => Term::par(arb_process_term(rng, d), arb_process_term(rng, d)),
        3 => Term::ite(
            Term::bool(rng.bool()),
            arb_process_term(rng, d),
            arb_process_term(rng, d),
        ),
        4 => Term::let_(
            "w",
            Type::Int,
            Term::int(rng.below(8) as i64),
            arb_process_term(rng, d),
        ),
        _ => Term::par(Term::End, Term::par(arb_process_term(rng, d), Term::End)),
    }
}

/// Closed computational terms that actually reduce for several steps
/// (arithmetic, β-redexes, lets, channel creation, communication).
fn arb_reducing_term(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return Term::int(rng.below(16) as i64);
    }
    let d = depth - 1;
    match rng.below(6) {
        0 => Term::binop(
            BinOp::Add,
            arb_reducing_term(rng, d),
            arb_reducing_term(rng, d),
        ),
        1 => Term::app(
            Term::lam(
                "a",
                Type::Int,
                Term::binop(BinOp::Add, Term::var("a"), arb_reducing_term(rng, d)),
            ),
            arb_reducing_term(rng, d),
        ),
        2 => Term::ite(
            Term::binop(
                BinOp::Gt,
                arb_reducing_term(rng, d),
                arb_reducing_term(rng, d),
            ),
            arb_reducing_term(rng, d),
            arb_reducing_term(rng, d),
        ),
        3 => Term::let_(
            "b",
            Type::Int,
            arb_reducing_term(rng, d),
            Term::binop(BinOp::Add, Term::var("b"), Term::var("b")),
        ),
        4 => Term::let_(
            "c",
            Type::chan_io(Type::Int),
            Term::chan(Type::Int),
            Term::par(
                Term::send(
                    Term::var("c"),
                    arb_reducing_term(rng, d),
                    Term::thunk(Term::End),
                ),
                Term::recv(Term::var("c"), Term::lam("v", Type::Int, Term::End)),
            ),
        ),
        _ => Term::not(Term::bool(rng.bool())),
    }
}

#[test]
fn intern_identity_iff_structural_identity() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = arb_process_term(&mut rng, 4);
        let b = arb_process_term(&mut rng, 4);
        assert_eq!(
            TermRef::intern(&a) == TermRef::intern(&b),
            a == b,
            "seed {seed}: interned identity must coincide with structural equality\n  \
             a = {a}\n  b = {b}"
        );
        // Re-interning the same term always reproduces the id.
        assert_eq!(TermRef::intern(&a).id(), TermRef::new(a.clone()).id());
    }
}

#[test]
fn interned_reduction_agrees_step_for_step_with_the_tree_reducer() {
    let reducer = Reducer::new();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0x51e9);
        let t = arb_reducing_term(&mut rng, 4);
        let mut tree = t.clone();
        let mut interned = TermRef::intern(&t);
        for step in 0..64 {
            let tree_next = reducer.step(&tree);
            let interned_next = reducer.step_ref(&interned);
            match (tree_next, interned_next) {
                (None, None) => break,
                (Some((tn, tr)), Some((in_, ir))) => {
                    assert_eq!(
                        tr, ir,
                        "seed {seed}, step {step}: base rules diverged on {tree}"
                    );
                    assert_eq!(
                        in_, tn,
                        "seed {seed}, step {step}: reducts diverged on {tree}"
                    );
                    tree = tn;
                    interned = in_;
                }
                (a, b) => panic!(
                    "seed {seed}, step {step}: one semantics halted, the other did not \
                     (tree: {a:?}, interned: {b:?})"
                ),
            }
        }
        // Stepping the same interned state twice yields the same reduct —
        // the purity the successor memo relies on.
        if let (Some((n1, r1)), Some((n2, r2))) =
            (reducer.step_ref(&interned), reducer.step_ref(&interned))
        {
            assert_eq!(n1, n2, "seed {seed}: reduction is not deterministic");
            assert_eq!(r1, r2, "seed {seed}");
        }
    }
}

#[test]
fn par_components_memoization_never_changes_component_sequences() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0xbeef);
        let t = arb_process_term(&mut rng, 5);
        let plain = par_components(&t);
        let interned: Vec<Term> = TermRef::intern(&t)
            .par_components()
            .iter()
            .map(|c| c.as_term().clone())
            .collect();
        assert_eq!(
            interned, plain,
            "seed {seed}: memoized flattening drifted for {t}"
        );
        // Memo stability: the second call returns the identical list.
        let r = TermRef::intern(&t);
        assert_eq!(r.par_components(), r.par_components(), "seed {seed}");
        // Rebuild round-trips up to ≡ (all-end collapses to end).
        let rebuilt = TermRef::rebuild_par(&r.par_components());
        assert_eq!(
            par_components(rebuilt.as_term()),
            plain,
            "seed {seed}: rebuild_par changed the component sequence of {t}"
        );
    }
}

#[test]
fn free_vars_memoization_matches_the_plain_query() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0xf00d);
        let t = arb_process_term(&mut rng, 5);
        let r = TermRef::intern(&t);
        assert_eq!(*r.free_vars(), t.free_vars(), "seed {seed}: {t}");
    }
}

#[test]
fn sharing_substitution_is_semantically_invisible() {
    let x = Name::new("x");
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0x5b57);
        let t = arb_process_term(&mut rng, 4);
        let v = Term::int(seed as i64);
        let s = t.subst(&x, &v);
        // Free-variable accounting: x is gone, nothing else appears (v is
        // closed), everything else is preserved.
        let mut expected = t.free_vars();
        expected.remove(&x);
        assert_eq!(s.free_vars(), expected, "seed {seed}: {t}");
        // No-op substitutions are identities.
        let unused = Name::new("zzz_unused");
        assert_eq!(t.subst(&unused, &v), t, "seed {seed}");
        // Untouched branches of a substituted parallel composition share
        // their allocation with the input term.
        let pair = Term::par(
            t.clone(),
            Term::send(Term::var("x"), Term::int(1), Term::thunk(Term::End)),
        );
        if !t.free_vars().contains(&x) {
            if let (Term::Par(left0, _), Term::Par(left1, _)) = (&pair, &pair.subst(&x, &v)) {
                assert!(
                    Arc::ptr_eq(left0, left1),
                    "seed {seed}: untouched left branch was copied"
                );
            }
        }
    }
}

#[test]
fn substitution_through_interning_respects_shadowing() {
    // let x = 1 in send(x, x, λ_.end) — substituting x from outside is a
    // no-op (the binder scopes over the body), through TermRef and back.
    let inner = Term::send(Term::var("x"), Term::var("x"), Term::thunk(Term::End));
    let t = Term::let_("x", Type::Int, Term::int(1), inner);
    let r = TermRef::intern(&t);
    let substituted = r.as_term().subst(&Name::new("x"), &Term::int(9));
    assert_eq!(
        TermRef::intern(&substituted),
        r,
        "shadowed subst must be identity"
    );
}

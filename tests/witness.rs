//! The witness-trace contract, pinned at the outermost surface.
//!
//! Every *failing safety* check must ship a minimal, replayable witness
//! trace — the repository's counterpart of mCRL2's counterexample evidence
//! (paper §4.3): a path from the initial state of the LTS the property was
//! decided on to a state or transition that violates it. This suite checks
//! the whole journey: the [`effpi::Session`] outcome carries the trace, the
//! wire JSON of the report embeds it step by step, each step replays on the
//! actual LTS, and — because the default engine is breadth-first — the trace
//! is *shortest*, pinned against a scenario with a deliberately longer decoy
//! route to the same violation.

use effpi::protocols::Scenario;
use effpi::{Property, Session, TypeEnv};
use lambdapi::Type;

/// A chain of `depth` outputs on each variable in turn, ending in `Nil`.
fn out_chain(vars: &[&str]) -> Type {
    let mut ty = Type::Nil;
    for var in vars.iter().rev() {
        ty = Type::out(Type::var(*var), Type::Int, Type::thunk(ty));
    }
    ty
}

/// A scenario whose `non-usage(aud)` check fails, with two routes to the
/// violation: a short one (`x` then `aud`, 2 steps) and a longer decoy
/// (`y`, `z`, then `aud`, 3 steps). The BFS witness must take the short one.
fn leaky_scenario() -> Scenario {
    let env = TypeEnv::new()
        .bind("x", Type::chan_out(Type::Int))
        .bind("y", Type::chan_out(Type::Int))
        .bind("z", Type::chan_out(Type::Int))
        .bind("aud", Type::chan_out(Type::Int));
    let ty = Type::union(out_chain(&["x", "aud"]), out_chain(&["y", "z", "aud"]));
    Scenario {
        name: "leaky".into(),
        env,
        ty,
        visible: ["x", "y", "z", "aud"].map(Into::into).to_vec(),
        properties: vec![
            Property::non_usage(["aud"]),
            Property::deadlock_free(["x", "y", "z", "aud"]),
        ],
        paper_verdicts: None,
        paper_states: None,
    }
}

#[test]
fn failing_safety_checks_carry_a_replayable_witness_in_the_wire_json() {
    let session = Session::new();
    let scenario = leaky_scenario();
    let report = session.run_scenario(&scenario);
    let json = report.to_wire_json();

    let properties = json
        .get("properties")
        .and_then(wire::Json::as_arr)
        .expect("report JSON has a properties array");
    let non_usage = properties
        .iter()
        .find(|p| p.get("name").and_then(wire::Json::as_str) == Some("non-usage"))
        .expect("the non-usage row is reported");
    assert_eq!(
        non_usage.get("holds").and_then(wire::Json::as_bool),
        Some(false),
        "the scenario is built to violate non-usage(aud)"
    );
    let violation = non_usage
        .get("violation")
        .and_then(wire::Json::as_str)
        .expect("a failing safety check names its violation");
    assert!(violation.contains("aud"), "{violation}");

    // Replay the embedded trace, step by step, on the LTS the property was
    // decided on (non-usage is decided on the unrestricted probed LTS, which
    // is exactly what Session::build_lts rebuilds).
    let steps = non_usage
        .get("trace")
        .and_then(wire::Json::as_arr)
        .expect("a failing safety check embeds its witness trace");
    let (_, lts) = session.build_lts(&scenario.env, &scenario.ty).unwrap();
    let mut at = lts.initial();
    for step in steps {
        let from = step.get("from").and_then(wire::Json::as_usize).unwrap();
        let label = step.get("label").and_then(wire::Json::as_str).unwrap();
        let to = step.get("to").and_then(wire::Json::as_usize).unwrap();
        assert_eq!(from, at, "trace steps chain from the initial state");
        assert!(
            lts.transitions_from(from)
                .iter()
                .any(|(l, j)| l.to_string() == label && *j == to),
            "step {from} --[{label}]--> {to} is not a transition of the LTS"
        );
        at = to;
    }

    // The passing safety check reports no witness fields at all.
    let deadlock_free = properties
        .iter()
        .find(|p| p.get("name").and_then(wire::Json::as_str) == Some("deadlock-free"))
        .expect("the deadlock-free row is reported");
    assert_eq!(
        deadlock_free.get("holds").and_then(wire::Json::as_bool),
        Some(true)
    );
    assert!(deadlock_free.get("violation").is_none());
    assert!(deadlock_free.get("trace").is_none());
}

#[test]
fn bfs_witness_traces_are_minimal() {
    // The decoy route (y, z, aud) reaches the same violation one step later
    // than the short route (x, aud): a breadth-first witness must be the
    // 2-step one. This pins minimality, not just replayability.
    let session = Session::new();
    let scenario = leaky_scenario();
    let outcome = session
        .verify(&scenario.env, &scenario.ty, &Property::non_usage(["aud"]))
        .unwrap();
    assert!(!outcome.holds);
    let trace = outcome.trace.expect("failing safety check carries a trace");
    // Step 0 resolves the union (a τ choice), then the short route: x, aud.
    // The decoy route would take 4 steps (τ, y, z, aud).
    assert_eq!(
        trace.steps.len(),
        3,
        "the witness must take the short route, not the 4-step decoy: {trace}"
    );
    assert!(
        trace.steps[1].label.to_string().contains('x'),
        "the short route goes through x: {trace}"
    );
    assert!(
        trace.steps[2].label.to_string().contains("aud"),
        "the violating step is the output on aud: {trace}"
    );
}

#[test]
fn liveness_failures_carry_no_trace() {
    // A failing *liveness* template has no finite witness (its evidence
    // would be an infinite run), so the report must not fabricate one.
    let session = Session::new();
    let env = TypeEnv::new()
        .bind("x", Type::chan_out(Type::Int))
        .bind("y", Type::chan_out(Type::Int));
    let only_x = out_chain(&["x"]);
    let outcome = session
        .verify(&env, &only_x, &Property::eventual_output(["y"]))
        .unwrap();
    assert!(!outcome.holds);
    assert!(outcome.trace.is_none());
}

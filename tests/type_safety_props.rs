//! Property-based tests for the core invariants of the calculus, the type
//! system and the type LTS:
//!
//! * **type safety** (Thm. 3.6): randomly generated terms that type-check
//!   never reduce to `err`;
//! * **subtyping is a preorder** on randomly generated types, and the
//!   syntactic congruence ≡ implies subtyping in both directions;
//! * **normalisation is idempotent** and preserves free variables and
//!   behaviour-relevant structure;
//! * **substitution** removes the substituted variable;
//! * **the type LTS is deterministic as a function** (same input, same graph).
//!
//! The workspace builds offline with no external dependencies, so instead of
//! `proptest` the cases are drawn by the small deterministic generator below:
//! every test runs a fixed number of cases from fixed seeds, making failures
//! exactly reproducible by seed.

use dbt_types::{Checker, TypeEnv};
use lambdapi::{BinOp, Name, Reducer, Term, Type};
use lts::TypeLts;

const CASES: u64 = 128;

/// SplitMix64: a tiny, high-quality deterministic PRNG (public-domain
/// algorithm), enough to drive structural generators.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniformly chosen value in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn small_int(&mut self) -> i64 {
        (self.below(200) as i64) - 100
    }
}

/// Simple data expressions of type int or bool (possibly ill-typed on
/// purpose: the mix lets the type checker reject some and accept others).
fn arb_data_term(rng: &mut Rng, depth: usize) -> Term {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(4) {
            0 => Term::bool(rng.bool()),
            1 => Term::int(rng.small_int()),
            2 => Term::unit(),
            _ => Term::str("hello"),
        };
    }
    let d = depth - 1;
    match rng.below(6) {
        0 => Term::binop(BinOp::Add, arb_data_term(rng, d), arb_data_term(rng, d)),
        1 => Term::binop(BinOp::Gt, arb_data_term(rng, d), arb_data_term(rng, d)),
        2 => Term::binop(BinOp::Eq, arb_data_term(rng, d), arb_data_term(rng, d)),
        3 => Term::not(arb_data_term(rng, d)),
        4 => Term::ite(
            arb_data_term(rng, d),
            arb_data_term(rng, d),
            arb_data_term(rng, d),
        ),
        _ => {
            // A β-redex binding an int variable.
            let body_seed = arb_data_term(rng, d);
            let body = Term::ite(
                Term::binop(BinOp::Gt, Term::var("x"), Term::int(0)),
                body_seed.clone(),
                body_seed,
            );
            Term::app(Term::lam("x", Type::Int, body), arb_data_term(rng, d))
        }
    }
}

/// Value-level types of the functional + channel fragment.
fn arb_value_type(rng: &mut Rng, depth: usize) -> Type {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(6) {
            0 => Type::Bool,
            1 => Type::Int,
            2 => Type::Str,
            3 => Type::Unit,
            4 => Type::Top,
            _ => Type::Bottom,
        };
    }
    let d = depth - 1;
    match rng.below(5) {
        0 => Type::union(arb_value_type(rng, d), arb_value_type(rng, d)),
        1 => Type::chan_io(arb_value_type(rng, d)),
        2 => Type::chan_in(arb_value_type(rng, d)),
        3 => Type::chan_out(arb_value_type(rng, d)),
        _ => Type::pi("x", arb_value_type(rng, d), arb_value_type(rng, d)),
    }
}

/// Process types over two channel variables `x` (int) and `y` (int), in the
/// guarded fragment accepted by the verifier.
fn arb_process_type(rng: &mut Rng, depth: usize) -> Type {
    if depth == 0 || rng.below(4) == 0 {
        return Type::Nil;
    }
    let d = depth - 1;
    let chan = if rng.bool() { "x" } else { "y" };
    match rng.below(4) {
        0 => Type::out(
            Type::var(chan),
            Type::Int,
            Type::thunk(arb_process_type(rng, d)),
        ),
        1 => Type::inp(
            Type::var(chan),
            Type::pi("v", Type::Int, arb_process_type(rng, d)),
        ),
        2 => Type::union(arb_process_type(rng, d), arb_process_type(rng, d)),
        _ => Type::par(arb_process_type(rng, d), arb_process_type(rng, d)),
    }
}

fn two_channel_env() -> TypeEnv {
    TypeEnv::new()
        .bind("x", Type::chan_io(Type::Int))
        .bind("y", Type::chan_io(Type::Int))
}

/// Theorem 3.6 on the data fragment: if a random term type-checks, running it
/// never reaches `err` (and it terminates, since the fragment has no
/// recursion).
#[test]
fn well_typed_data_terms_are_safe() {
    let checker = Checker::new();
    for seed in 0..CASES {
        let t = arb_data_term(&mut Rng::new(seed), 4);
        if checker.type_of(&TypeEnv::new(), &t).is_ok() {
            let result = Reducer::new().eval(&t, 10_000);
            assert!(
                result.is_safe(),
                "seed {seed}: well-typed term reached err: {t}"
            );
            assert!(
                result.normal_form,
                "seed {seed}: well-typed data term failed to terminate"
            );
        }
    }
}

/// Evaluation is deterministic on the data fragment: two runs agree.
#[test]
fn evaluation_is_deterministic() {
    let r = Reducer::new();
    for seed in 0..CASES {
        let t = arb_data_term(&mut Rng::new(seed), 4);
        let a = r.eval(&t, 10_000);
        let b = r.eval(&t, 10_000);
        assert_eq!(a.term, b.term, "seed {seed}");
        assert_eq!(a.steps, b.steps, "seed {seed}");
    }
}

/// Subtyping is reflexive on arbitrary value types.
#[test]
fn subtyping_is_reflexive() {
    let checker = Checker::new();
    let env = TypeEnv::new();
    for seed in 0..CASES {
        let t = arb_value_type(&mut Rng::new(seed), 3);
        assert!(checker.is_subtype(&env, &t, &t), "seed {seed}: {t} ⩽̸ {t}");
    }
}

/// Subtyping is transitive on the generated value types (checked on related
/// triples built from unions, which are plentiful enough to be meaningful:
/// T ⩽ T∨U ⩽ (T∨U)∨S).
#[test]
fn subtyping_chains_through_unions() {
    let checker = Checker::new();
    let env = TypeEnv::new();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let t = arb_value_type(&mut rng, 3);
        let u = arb_value_type(&mut rng, 3);
        let s = arb_value_type(&mut rng, 3);
        let tu = Type::union(t.clone(), u);
        let tus = Type::union(tu.clone(), s);
        assert!(checker.is_subtype(&env, &t, &tu), "seed {seed}");
        assert!(checker.is_subtype(&env, &tu, &tus), "seed {seed}");
        assert!(checker.is_subtype(&env, &t, &tus), "seed {seed}");
    }
}

/// Every generated type is below ⊤, and ⊥ is below every generated type.
#[test]
fn top_and_bottom_bound_everything() {
    let checker = Checker::new();
    let env = TypeEnv::new();
    for seed in 0..CASES {
        let t = arb_value_type(&mut Rng::new(seed), 3);
        assert!(checker.is_subtype(&env, &t, &Type::Top), "seed {seed}");
        assert!(checker.is_subtype(&env, &Type::Bottom, &t), "seed {seed}");
    }
}

/// Normalisation is idempotent and preserves the free variables.
#[test]
fn normalisation_is_idempotent() {
    for seed in 0..CASES {
        let t = arb_process_type(&mut Rng::new(seed), 4);
        let n1 = t.normalize();
        let n2 = n1.normalize();
        assert_eq!(&n1, &n2, "seed {seed}");
        assert_eq!(t.free_vars(), n1.free_vars(), "seed {seed}");
    }
}

/// The structural congruence ≡ implies mutual subtyping (both are
/// implementations of "the same protocol").
#[test]
fn congruent_process_types_are_equivalent() {
    let checker = Checker::new();
    let env = two_channel_env();
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let t = arb_process_type(&mut rng, 4);
        let u = arb_process_type(&mut rng, 4);
        let left = Type::par(t.clone(), u.clone());
        let right = Type::par(u, t);
        assert!(left.cong_eq(&right), "seed {seed}");
        assert!(checker.is_subtype(&env, &left, &right), "seed {seed}");
        assert!(checker.is_subtype(&env, &right, &left), "seed {seed}");
    }
}

/// Substitution eliminates the substituted variable (when the replacement
/// does not itself mention it).
#[test]
fn substitution_removes_the_variable() {
    for seed in 0..CASES {
        let t = arb_process_type(&mut Rng::new(seed), 4);
        let subst = t.subst_var(&Name::new("x"), &Type::chan_io(Type::Int));
        assert!(!subst.free_vars().contains(&Name::new("x")), "seed {seed}");
        // And it leaves other variables alone.
        let fv_before = t.free_vars().contains(&Name::new("y"));
        let fv_after = subst.free_vars().contains(&Name::new("y"));
        assert_eq!(fv_before, fv_after, "seed {seed}");
    }
}

/// Building the type LTS twice yields the same graph (the semantics of
/// Def. 4.2 is a function of the type and environment).
#[test]
fn type_lts_construction_is_deterministic() {
    let env = two_channel_env();
    let builder = TypeLts::new(env);
    for seed in 0..CASES {
        let t = arb_process_type(&mut Rng::new(seed), 4);
        let a = builder.build(&t, 2_000);
        let b = builder.build(&t, 2_000);
        assert_eq!(a.num_states(), b.num_states(), "seed {seed}");
        assert_eq!(a.num_transitions(), b.num_transitions(), "seed {seed}");
    }
}

/// Every generated guarded process type is accepted by the validity judgement
/// as a π-type, and every state reachable in its LTS is again a π-type (a
/// semantic counterpart of subject transition at type level).
#[test]
fn process_types_stay_process_types_along_transitions() {
    let checker = Checker::new();
    let env = two_channel_env();
    for seed in 0..CASES {
        let t = arb_process_type(&mut Rng::new(seed), 4);
        assert!(checker.check_pi_type(&env, &t).is_ok(), "seed {seed}: {t}");
        let lts = TypeLts::new(env.clone()).build(&t, 500);
        for state in lts.states().iter().take(50) {
            assert!(
                checker.check_pi_type(&env, state).is_ok(),
                "seed {seed}: reachable state is not a π-type: {state}"
            );
        }
    }
}

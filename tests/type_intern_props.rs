//! Property suite for the hash-consing interner (`lambdapi::intern`): the
//! soundness contract the whole hot path (seen-sets, memoized
//! canonicalisation, cache keys) rests on.
//!
//! The central property is the iff from the interning design:
//!
//! > `intern(a).normalized() == intern(b).normalized()`
//! > **⇔** `a.normalize() == b.normalize()`
//!
//! i.e. two types share an interned normal form exactly when their plain
//! normal forms are structurally equal — interning collapses precisely the
//! structural congruence `normalize` decides, nothing more, nothing less.
//!
//! Cases come from two deterministic generators (the offline stand-ins for
//! proptest, as in `type_safety_props.rs`):
//!
//! * structural generators over the guarded process fragment (plus value
//!   types), seeded SplitMix64 — exact reproduction by seed;
//! * the mutation harness of `tests/spec_fuzz.rs`: valid spec texts with
//!   hostile fragments spliced in, keeping whatever still parses — so the
//!   property is also exercised on parser-shaped types, the ones
//!   `effpi-serve` interns for cache keys.

use effpi::spec::parse_spec;
use lambdapi::{TyRef, Type};

const CASES: u64 = 128;

/// SplitMix64 — same deterministic PRNG as the sibling property suites.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Process types over channel variables `x`/`y` — unions and parallels
/// included, so normalisation has real flattening/sorting work to do.
fn arb_process_type(rng: &mut Rng, depth: usize) -> Type {
    if depth == 0 || rng.below(4) == 0 {
        return Type::Nil;
    }
    let d = depth - 1;
    let chan = if rng.bool() { "x" } else { "y" };
    match rng.below(5) {
        0 => Type::out(
            Type::var(chan),
            Type::Int,
            Type::thunk(arb_process_type(rng, d)),
        ),
        1 => Type::inp(
            Type::var(chan),
            Type::pi("v", Type::Int, arb_process_type(rng, d)),
        ),
        2 => Type::union(arb_process_type(rng, d), arb_process_type(rng, d)),
        3 => Type::rec(
            "t",
            Type::inp(
                Type::var(chan),
                Type::pi("v", Type::Int, arb_process_type(rng, d)),
            ),
        ),
        _ => Type::par(arb_process_type(rng, d), arb_process_type(rng, d)),
    }
}

fn arb_value_type(rng: &mut Rng, depth: usize) -> Type {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(6) {
            0 => Type::Bool,
            1 => Type::Int,
            2 => Type::Str,
            3 => Type::Unit,
            4 => Type::Top,
            _ => Type::Bottom,
        };
    }
    let d = depth - 1;
    match rng.below(4) {
        0 => Type::union(arb_value_type(rng, d), arb_value_type(rng, d)),
        1 => Type::chan_io(arb_value_type(rng, d)),
        2 => Type::chan_out(arb_value_type(rng, d)),
        _ => Type::pi("x", arb_value_type(rng, d), arb_value_type(rng, d)),
    }
}

/// The central iff, checked for one pair of types.
fn assert_intern_iff_normalize(a: &Type, b: &Type, ctx: &str) {
    let interned_equal = TyRef::intern(a).normalized() == TyRef::intern(b).normalized();
    let plain_equal = a.normalize() == b.normalize();
    assert_eq!(
        interned_equal, plain_equal,
        "{ctx}: intern(a).normalized() == intern(b).normalized() is {interned_equal} \
         but a.normalize() == b.normalize() is {plain_equal}\n  a = {a}\n  b = {b}"
    );
}

#[test]
fn interned_normal_forms_agree_with_plain_normalize_structurally() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let t = if seed % 3 == 0 {
            arb_value_type(&mut rng, 5)
        } else {
            arb_process_type(&mut rng, 5)
        };
        // The strong (pointwise) form of the contract: the interned normal
        // form IS the plain normal form, structurally.
        let interned = TyRef::intern(&t).normalized();
        assert_eq!(
            *interned.as_type(),
            t.normalize(),
            "seed {seed}: interned normal form drifted from Type::normalize for {t}"
        );
        // And it is a fixpoint through the memo.
        assert_eq!(interned.normalized(), interned, "seed {seed}");
        assert!(interned.is_normal(), "seed {seed}");
    }
}

#[test]
fn intern_equality_iff_normalize_equality_over_generated_pairs() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = arb_process_type(&mut rng, 4);
        let b = arb_process_type(&mut rng, 4);
        assert_intern_iff_normalize(&a, &b, &format!("seed {seed} (independent pair)"));
        // A congruent respelling of `a` (members permuted, nil-padding): the
        // iff must fire on its positive side.
        let respelled = Type::par(Type::Nil, Type::par(b.clone(), a.clone()));
        let original = Type::par(a.clone(), b.clone());
        assert_intern_iff_normalize(
            &respelled,
            &original,
            &format!("seed {seed} (congruent respelling)"),
        );
        assert_eq!(
            TyRef::intern(&respelled).normalized(),
            TyRef::intern(&original).normalized(),
            "seed {seed}: p[nil, p[b, a]] must intern-normalise like p[a, b]"
        );
    }
}

#[test]
fn intern_identity_iff_structural_identity() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = arb_process_type(&mut rng, 4);
        let b = arb_process_type(&mut rng, 4);
        assert_eq!(
            TyRef::intern(&a) == TyRef::intern(&b),
            a == b,
            "seed {seed}: interned identity must coincide with structural equality\n  \
             a = {a}\n  b = {b}"
        );
    }
}

#[test]
fn canonical_forms_agree_with_normalize_then_unfold_head() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let t = arb_process_type(&mut rng, 5);
        for max_unfold in [1, 4, 16] {
            assert_eq!(
                *TyRef::intern(&t).canonical(max_unfold).as_type(),
                t.normalize().unfold_head(max_unfold),
                "seed {seed}, max_unfold {max_unfold}: canonical drifted for {t}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Parser-shaped types, via the spec_fuzz mutation harness
// ---------------------------------------------------------------------------

/// Valid seed specs (a subset of `tests/spec_fuzz.rs`'s).
const SEEDS: [&str; 3] = [
    "env self   : cio[int]\n\
     env aud    : co[int]\n\
     env client : co[str | ()]\n\
     type rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                       | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n",
    "def Token = ()\n\
     env a : cio[Token]\n\
     env b : cio[Token]\n\
     type p[ rec r . i[a, Pi(t: Token) o[b, Token, Pi() r]],\n\
             rec s . i[b, Pi(t: Token) o[a, Token, Pi() s]] ]\n",
    "env z : cio[co[str]]\n\
     type rec t . i[z, Pi(reply: co[str]) o[reply, str, Pi() t]]\n",
];

const HOSTILE: [&str; 12] = [
    "[", "]", "(", ")", "|", "rec", "Pi", "nil", "µ", "Π", ",", " ",
];

/// Every type a parsed spec mentions: the `type` statement plus the
/// environment bindings.
fn spec_types(text: &str) -> Vec<Type> {
    let Ok(spec) = parse_spec(text) else {
        return Vec::new();
    };
    let mut types: Vec<Type> = spec.env.iter().map(|(_, ty)| ty.clone()).collect();
    types.extend(spec.ty);
    types
}

#[test]
fn parser_shaped_types_satisfy_the_intern_contract() {
    // The pristine seeds always parse; mutations contribute whatever still
    // does. Every collected type goes through the pointwise contract, and
    // consecutive ones through the iff.
    let mut collected: Vec<Type> = Vec::new();
    for seed_text in SEEDS {
        collected.extend(spec_types(seed_text));
    }
    for seed in 0..CASES {
        let mut rng = Rng::new(seed ^ 0xabcdef);
        let base = SEEDS[(seed % SEEDS.len() as u64) as usize];
        let mut mutated = String::new();
        let mut chars = base.chars().collect::<Vec<_>>();
        // Splice up to three hostile fragments at random char positions.
        for _ in 0..=rng.below(3) {
            let at = rng.below(chars.len() as u64 + 1) as usize;
            let frag = HOSTILE[rng.below(HOSTILE.len() as u64) as usize];
            chars.splice(at..at, frag.chars());
        }
        mutated.extend(chars);
        collected.extend(spec_types(&mutated));
    }
    assert!(
        collected.len() >= SEEDS.len() * 2,
        "the harness produced too few parsed types ({})",
        collected.len()
    );
    for t in &collected {
        assert_eq!(
            *TyRef::intern(t).normalized().as_type(),
            t.normalize(),
            "parser-shaped type broke the pointwise contract: {t}"
        );
    }
    for pair in collected.windows(2) {
        assert_intern_iff_normalize(&pair[0], &pair[1], "parser-shaped pair");
    }
}

//! Tests for the unified `effpi::Session` pipeline API: builder defaults,
//! visible-channel filtering, and structured reports (wire rendering
//! included).

use dbt_types::Checker;
use effpi::protocols::{payment, pingpong};
use effpi::{Error, Property, Session, Type, TypeEnv, Verifier, VerifyError};
use lambdapi::examples;
use wire::Json;

fn payment_env() -> TypeEnv {
    TypeEnv::new()
        .bind("self", Type::chan_io(Type::Int))
        .bind("aud", Type::chan_out(Type::Int))
        .bind("client", examples::reply_channel_type())
}

fn payment_applied() -> Type {
    examples::tpayment_type()
        .apply_all(&[Type::var("self"), Type::var("aud"), Type::var("client")])
        .unwrap()
}

// ---------------------------------------------------------------------------
// Builder defaults and knobs
// ---------------------------------------------------------------------------

#[test]
fn builder_defaults_match_the_legacy_defaults() {
    let session = Session::builder().build();
    let config = session.config();
    let default_verifier = Verifier::default();
    let default_checker = Checker::default();

    assert_eq!(config.max_states, default_verifier.max_states);
    assert_eq!(config.auto_probe, default_verifier.auto_probe);
    assert_eq!(config.visible, default_verifier.visible);
    assert_eq!(config.max_depth, default_checker.max_depth);
    assert_eq!(config.max_unfold, default_checker.max_unfold);

    // The cached verifier/checker really carry those settings.
    assert_eq!(session.verifier().max_states, default_verifier.max_states);
    assert_eq!(session.verifier().auto_probe, default_verifier.auto_probe);
    assert_eq!(session.checker().max_depth, default_checker.max_depth);
    assert_eq!(session.checker().max_unfold, default_checker.max_unfold);

    // And Session::new() is the same thing.
    assert_eq!(Session::new().config(), config);
}

#[test]
fn builder_knobs_propagate_to_the_cached_components() {
    let session = Session::builder()
        .max_states(1234)
        .max_depth(77)
        .max_unfold(5)
        .auto_probe(false)
        .visible(["a", "b"])
        .build();
    assert_eq!(session.verifier().max_states, 1234);
    assert!(!session.verifier().auto_probe);
    assert_eq!(
        session.verifier().visible,
        Some(vec!["a".into(), "b".into()])
    );
    assert_eq!(session.checker().max_depth, 77);
    assert_eq!(session.checker().max_unfold, 5);
    // The verifier's own checker shares the session's limits (one coherent
    // pipeline, not two differently-configured checkers).
    assert_eq!(session.verifier().checker().max_depth, 77);
    assert_eq!(session.verifier().checker().max_unfold, 5);
}

// ---------------------------------------------------------------------------
// Equivalence with the old per-call setup
// ---------------------------------------------------------------------------

#[test]
fn session_verify_matches_a_hand_configured_verifier() {
    let env = payment_env();
    let ty = payment_applied();
    let property = Property::non_usage(["self"]);

    let old = Verifier::new().verify(&env, &ty, &property).unwrap();
    let new = Session::new().verify(&env, &ty, &property).unwrap();
    assert_eq!(old.holds, new.holds);
    assert_eq!(old.states, new.states);
    assert_eq!(old.transitions, new.transitions);
}

#[test]
fn scenario_runs_honour_the_scenario_visible_list() {
    // The old way: a per-call verifier with the scenario's visible channels.
    let scenario = payment::payment_with_clients(2);
    let mut verifier = Verifier::with_max_states(50_000);
    verifier.visible = Some(scenario.visible.clone());
    let old = verifier
        .verify_all(&scenario.env, &scenario.ty, &scenario.properties)
        .unwrap();

    // The new way: the session applies the scenario's visible list itself —
    // even when the session was built with an unrelated default.
    let session = Session::builder()
        .max_states(50_000)
        .visible(["unrelated"])
        .build();
    let report = session.run_scenario(&scenario);
    assert!(report.first_error().is_none());

    let old_verdicts: Vec<bool> = old.iter().map(|o| o.holds).collect();
    assert_eq!(old_verdicts, report.verdicts());
    assert_eq!(old[0].states, report.states());
}

#[test]
fn state_bound_errors_carry_bound_and_explored_counts() {
    let session = Session::builder().max_states(3).build();
    let report = session.run_scenario(&payment::payment_with_clients(2));
    match report.error {
        Some(Error::Verify(VerifyError::StateSpaceTooLarge { bound, explored })) => {
            assert_eq!(bound, 3);
            assert!(explored >= 3);
        }
        other => panic!("expected a state-space error, got {other:?}"),
    }
    assert!(!report.passed());
    assert_eq!(report.states(), 0, "no completed outcomes");
    let summary = report.summary();
    assert!(!summary.passed);
    assert!(summary.error.unwrap().contains("bound of 3"));
}

// ---------------------------------------------------------------------------
// Structured reports
// ---------------------------------------------------------------------------

#[test]
fn reports_expose_verdicts_sizes_and_a_machine_readable_summary() {
    let session = Session::builder().max_states(50_000).build();
    let scenario = pingpong::ping_pong_pairs(2, true);
    let report = session.run_scenario(&scenario);

    assert_eq!(report.name.as_deref(), Some(scenario.name.as_str()));
    assert_eq!(report.properties.len(), 6);
    assert!(report.states() > 1);
    assert!(report.transitions() > 0);
    assert!(report.total_duration() > std::time::Duration::ZERO);

    let summary = report.summary();
    assert_eq!(summary.name, scenario.name);
    assert_eq!(summary.states, report.states());
    assert_eq!(summary.verdicts.len(), 6);
    assert_eq!(summary.verdicts[0].0, "deadlock-free");

    // The summary line is stable key=value text a harness can grep.
    let line = summary.to_string();
    assert!(line.contains("passed="), "{line}");
    assert!(line.contains("states="), "{line}");
    assert!(line.contains("verdicts=deadlock-free:"), "{line}");

    // The human rendering mentions the scenario and each property.
    let shown = report.to_string();
    assert!(shown.contains(&scenario.name), "{shown}");
    assert!(shown.contains("responsive"), "{shown}");
}

#[test]
fn run_spec_text_covers_both_steps() {
    let report = Session::builder()
        .max_states(10_000)
        .build()
        .run_spec_text(
            r#"
            env unused : cio[int]
            type Pi(c: cio[int]) o[c, int, Pi() nil]
            term fun c: cio[int]. send(c, 42, fun _: (). end)
            "#,
        )
        .unwrap();
    assert!(matches!(report.typecheck, Some(Ok(()))));
    assert!(report.passed());

    // Malformed specifications surface as Error::Spec.
    let err = Session::new().run_spec_text("bogus statement").unwrap_err();
    assert!(matches!(err, Error::Spec(_)), "{err}");
}

// ---------------------------------------------------------------------------
// Wire rendering (the `effpi-serve` response body)
// ---------------------------------------------------------------------------

#[test]
fn wire_json_rendering_is_deterministic_and_carries_the_stable_line() {
    let session = Session::builder().max_states(50_000).build();
    let report = session.run_scenario(&payment::payment_with_clients(2));
    let wire = report.to_wire_json();

    // Deterministic rendering: rendering twice (and re-parsing) is stable.
    let text = wire.to_string();
    assert_eq!(text, report.to_wire_json().to_string());
    let parsed = Json::parse(&text).unwrap();
    assert_eq!(parsed, wire);

    // The envelope carries the summary verbatim.
    let summary = report.summary();
    assert_eq!(
        parsed.get("stable_line").and_then(Json::as_str),
        Some(summary.stable_line().as_str())
    );
    assert_eq!(
        parsed.get("passed").and_then(Json::as_bool),
        Some(summary.passed)
    );
    assert_eq!(
        parsed.get("states").and_then(Json::as_usize),
        Some(summary.states)
    );
    let properties = parsed.get("properties").and_then(Json::as_arr).unwrap();
    assert_eq!(properties.len(), 6);
    assert_eq!(
        properties[0].get("name").and_then(Json::as_str),
        Some("deadlock-free")
    );

    // Failures render structurally too: a state-bound trip carries the
    // run-level error and an empty property list.
    let tripped = Session::builder()
        .max_states(3)
        .build()
        .run_scenario(&payment::payment_with_clients(2));
    let wire = tripped.to_wire_json();
    assert_eq!(wire.get("passed").and_then(Json::as_bool), Some(false));
    assert!(wire
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("bound of 3")));

    // And a typecheck failure is its own object.
    let bad_term = session
        .run_spec_text(
            "env unused : cio[int]\ntype Pi(c: cio[int]) o[c, int, Pi() nil]\nterm fun c: cio[int]. end",
        )
        .unwrap();
    let wire = bad_term.to_wire_json();
    let typecheck = wire.get("typecheck").unwrap();
    assert_eq!(typecheck.get("ok").and_then(Json::as_bool), Some(false));
    assert!(typecheck.get("error").and_then(Json::as_str).is_some());
}

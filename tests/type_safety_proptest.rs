//! Property-based tests (proptest) for the core invariants of the calculus,
//! the type system and the type LTS:
//!
//! * **type safety** (Thm. 3.6): randomly generated terms that type-check
//!   never reduce to `err`;
//! * **subtyping is a preorder** on randomly generated types, and the
//!   syntactic congruence ≡ implies subtyping in both directions;
//! * **normalisation is idempotent** and preserves free variables and
//!   behaviour-relevant structure;
//! * **substitution** removes the substituted variable;
//! * **the type LTS is deterministic as a function** (same input, same graph).

use dbt_types::{Checker, TypeEnv};
use lambdapi::{BinOp, Name, Reducer, Term, Type};
use lts::TypeLts;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Simple data expressions of type int or bool (possibly ill-typed on purpose:
/// the mix lets the type checker reject some and accept others).
fn arb_data_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Term::bool),
        (-100i64..100).prop_map(Term::int),
        Just(Term::unit()),
        Just(Term::str("hello")),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::binop(BinOp::Add, a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::binop(BinOp::Gt, a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::binop(BinOp::Eq, a, b)),
            inner.clone().prop_map(Term::not),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Term::ite(c, t, e)),
            // A β-redex binding an int variable.
            (inner.clone(), inner)
                .prop_map(|(body_seed, arg)| {
                    let body = Term::ite(
                        Term::binop(BinOp::Gt, Term::var("x"), Term::int(0)),
                        body_seed.clone(),
                        body_seed,
                    );
                    Term::app(Term::lam("x", Type::Int, body), arg)
                }),
        ]
    })
}

/// Value-level types of the functional + channel fragment.
fn arb_value_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Bool),
        Just(Type::Int),
        Just(Type::Str),
        Just(Type::Unit),
        Just(Type::Top),
        Just(Type::Bottom),
    ];
    leaf.prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::union(a, b)),
            inner.clone().prop_map(Type::chan_io),
            inner.clone().prop_map(Type::chan_in),
            inner.clone().prop_map(Type::chan_out),
            (inner.clone(), inner).prop_map(|(a, b)| Type::pi("x", a, b)),
        ]
    })
}

/// Process types over two channel variables `x` (int) and `y` (int), in the
/// guarded fragment accepted by the verifier.
fn arb_process_type() -> impl Strategy<Value = Type> {
    let base = prop_oneof![Just(Type::Nil)];
    base.prop_recursive(4, 48, 2, |inner| {
        prop_oneof![
            (prop_oneof![Just("x"), Just("y")], inner.clone()).prop_map(|(c, k)| {
                Type::out(Type::var(c), Type::Int, Type::thunk(k))
            }),
            (prop_oneof![Just("x"), Just("y")], inner.clone()).prop_map(|(c, k)| {
                Type::inp(Type::var(c), Type::pi("v", Type::Int, k))
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Type::par(a, b)),
        ]
    })
}

fn two_channel_env() -> TypeEnv {
    TypeEnv::new()
        .bind("x", Type::chan_io(Type::Int))
        .bind("y", Type::chan_io(Type::Int))
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 3.6 on the data fragment: if a random term type-checks, running
    /// it never reaches `err` (and it terminates, since the fragment has no
    /// recursion).
    #[test]
    fn well_typed_data_terms_are_safe(t in arb_data_term()) {
        let checker = Checker::new();
        if checker.type_of(&TypeEnv::new(), &t).is_ok() {
            let result = Reducer::new().eval(&t, 10_000);
            prop_assert!(result.is_safe(), "well-typed term reached err: {t}");
            prop_assert!(result.normal_form, "well-typed data term failed to terminate");
        }
    }

    /// Evaluation is deterministic on the data fragment: two runs agree.
    #[test]
    fn evaluation_is_deterministic(t in arb_data_term()) {
        let r = Reducer::new();
        let a = r.eval(&t, 10_000);
        let b = r.eval(&t, 10_000);
        prop_assert_eq!(a.term, b.term);
        prop_assert_eq!(a.steps, b.steps);
    }

    /// Subtyping is reflexive on arbitrary value types.
    #[test]
    fn subtyping_is_reflexive(t in arb_value_type()) {
        let checker = Checker::new();
        let env = TypeEnv::new();
        prop_assert!(checker.is_subtype(&env, &t, &t));
    }

    /// Subtyping is transitive on the generated value types (checked on
    /// related triples built from unions, which are plentiful enough to be
    /// meaningful: T ⩽ T∨U ⩽ (T∨U)∨S).
    #[test]
    fn subtyping_chains_through_unions(t in arb_value_type(), u in arb_value_type(), s in arb_value_type()) {
        let checker = Checker::new();
        let env = TypeEnv::new();
        let tu = Type::union(t.clone(), u);
        let tus = Type::union(tu.clone(), s);
        prop_assert!(checker.is_subtype(&env, &t, &tu));
        prop_assert!(checker.is_subtype(&env, &tu, &tus));
        prop_assert!(checker.is_subtype(&env, &t, &tus));
    }

    /// Every generated type is below ⊤, and ⊥ is below every generated type.
    #[test]
    fn top_and_bottom_bound_everything(t in arb_value_type()) {
        let checker = Checker::new();
        let env = TypeEnv::new();
        prop_assert!(checker.is_subtype(&env, &t, &Type::Top));
        prop_assert!(checker.is_subtype(&env, &Type::Bottom, &t));
    }

    /// Normalisation is idempotent and preserves the free variables.
    #[test]
    fn normalisation_is_idempotent(t in arb_process_type()) {
        let n1 = t.normalize();
        let n2 = n1.normalize();
        prop_assert_eq!(&n1, &n2);
        prop_assert_eq!(t.free_vars(), n1.free_vars());
    }

    /// The structural congruence ≡ implies mutual subtyping (both are
    /// implementations of "the same protocol").
    #[test]
    fn congruent_process_types_are_equivalent(t in arb_process_type(), u in arb_process_type()) {
        let checker = Checker::new();
        let env = two_channel_env();
        let left = Type::par(t.clone(), u.clone());
        let right = Type::par(u, t);
        prop_assert!(left.cong_eq(&right));
        prop_assert!(checker.is_subtype(&env, &left, &right));
        prop_assert!(checker.is_subtype(&env, &right, &left));
    }

    /// Substitution eliminates the substituted variable (when the replacement
    /// does not itself mention it).
    #[test]
    fn substitution_removes_the_variable(t in arb_process_type()) {
        let subst = t.subst_var(&Name::new("x"), &Type::chan_io(Type::Int));
        prop_assert!(!subst.free_vars().contains(&Name::new("x")));
        // And it leaves other variables alone.
        let fv_before = t.free_vars().contains(&Name::new("y"));
        let fv_after = subst.free_vars().contains(&Name::new("y"));
        prop_assert_eq!(fv_before, fv_after);
    }

    /// Building the type LTS twice yields the same graph (the semantics of
    /// Def. 4.2 is a function of the type and environment).
    #[test]
    fn type_lts_construction_is_deterministic(t in arb_process_type()) {
        let env = two_channel_env();
        let builder = TypeLts::new(env);
        let a = builder.build(&t, 2_000);
        let b = builder.build(&t, 2_000);
        prop_assert_eq!(a.num_states(), b.num_states());
        prop_assert_eq!(a.num_transitions(), b.num_transitions());
    }

    /// Every generated guarded process type is accepted by the validity
    /// judgement as a π-type, and every state reachable in its LTS is again a
    /// π-type (a semantic counterpart of subject transition at type level).
    #[test]
    fn process_types_stay_process_types_along_transitions(t in arb_process_type()) {
        let checker = Checker::new();
        let env = two_channel_env();
        prop_assert!(checker.check_pi_type(&env, &t).is_ok());
        let lts = TypeLts::new(env.clone()).build(&t, 500);
        for state in lts.states().iter().take(50) {
            prop_assert!(
                checker.check_pi_type(&env, state).is_ok(),
                "reachable state is not a π-type: {state}"
            );
        }
    }
}

//! End-to-end integration tests: specification → type checking → type-level
//! model checking → execution, across all crates, on the paper's use cases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use effpi::protocols::{dining, payment, pingpong, ring};
use effpi::{
    forever, new_actor, ActorRef, EffpiRuntime, Msg, Policy, Proc, Property, Reducer, Scheduler,
    Session, ThreadRuntime,
};
use lambdapi::examples;

/// The full §1 story: the audited implementation type-checks, the composed
/// protocol is responsive and deadlock-free, and an actor implementation run
/// on the Effpi-style runtime audits exactly the accepted payments.
#[test]
fn payment_with_audit_full_pipeline() {
    let session = Session::builder().max_states(50_000).build();

    // Step 1: typing.
    session
        .type_check_closed(&examples::payment_term(), &examples::tpayment_type())
        .expect("typing");

    // Step 2: type-level model checking of the composed scenario.
    let scenario = payment::payment_with_clients(2);
    let report = session.run_scenario(&scenario);
    assert!(report.first_error().is_none(), "verification completes");
    let verdicts = report.verdicts();
    assert!(verdicts[0], "deadlock-free");
    assert!(verdicts[5], "responsive");

    // Step 3: execution (a miniature version of the payment_audit example).
    let audited = Arc::new(AtomicU64::new(0));
    let accepted = Arc::new(AtomicU64::new(0));
    let (service_ref, service_mb) = new_actor();
    let (auditor_ref, auditor_mb) = new_actor();
    let auditor = {
        let audited = Arc::clone(&audited);
        forever(auditor_mb, move |msg, again| match msg {
            Msg::Int(_) => {
                audited.fetch_add(1, Ordering::SeqCst);
                again()
            }
            _ => Proc::End,
        })
    };
    let service = {
        let auditor_ref = auditor_ref.clone();
        forever(service_mb, move |msg, again| match msg {
            Msg::Pair(amount, reply_to) => {
                let amount = amount.as_int().unwrap_or(0);
                let reply = ActorRef::from_channel(reply_to.as_chan().expect("chan"));
                if amount > 42_000 {
                    reply.tell(Msg::Str("Rejected"), again)
                } else {
                    let auditor_ref = auditor_ref.clone();
                    auditor_ref.tell(Msg::Int(amount), move || {
                        reply.tell(Msg::Str("Accepted"), again)
                    })
                }
            }
            _ => auditor_ref.tell_end(Msg::Unit),
        })
    };
    let amounts = [1_000i64, 50_000, 2_000, 99_999, 3_000];
    let done = Arc::new(AtomicU64::new(0));
    let mut procs = vec![service, auditor];
    for amount in amounts {
        let (client_ref, client_mb) = new_actor();
        let accepted = Arc::clone(&accepted);
        let done = Arc::clone(&done);
        let stop_ref = service_ref.clone();
        procs.push(service_ref.tell(
            Msg::pair(Msg::Int(amount), Msg::Chan(client_ref.channel())),
            move || {
                client_mb.read(move |reply| {
                    if matches!(reply, Msg::Str("Accepted")) {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                    if done.fetch_add(1, Ordering::SeqCst) + 1 == amounts.len() as u64 {
                        stop_ref.tell_end(Msg::Unit)
                    } else {
                        Proc::End
                    }
                })
            },
        ));
    }
    EffpiRuntime::with_workers(Policy::ChannelFsm, 4).run(procs);
    assert_eq!(accepted.load(Ordering::SeqCst), 3);
    assert_eq!(
        audited.load(Ordering::SeqCst),
        3,
        "every accepted payment audited"
    );
}

/// The Ex. 2.2 ping-pong story across all layers: typing, verification of the
/// composed protocol, and reduction of the closed term to `end`.
#[test]
fn ping_pong_full_pipeline() {
    let session = Session::builder().max_states(50_000).build();
    session
        .type_check_closed(&examples::pinger_term(), &examples::tping_type())
        .expect("pinger typing");
    session
        .type_check_closed(&examples::ponger_term(), &examples::tpong_type())
        .expect("ponger typing");

    let plain = session.run_scenario(&pingpong::ping_pong_pairs(2, false));
    let responsive = session.run_scenario(&pingpong::ping_pong_pairs(2, true));
    assert!(plain.first_error().is_none() && responsive.first_error().is_none());
    assert!(plain.verdicts()[0], "plain pairs are deadlock-free");
    let resp_verdicts = responsive.verdicts();
    assert!(resp_verdicts[0] && resp_verdicts[5]);

    let result = Reducer::new().eval(&examples::ping_pong_main(), 1_000);
    assert!(result.is_safe());
    assert!(result.normal_form);
}

/// Verification catches the deadlocking dining-philosophers layout while
/// accepting the fixed one — at three different table sizes.
#[test]
fn dining_philosophers_deadlock_detection_scales() {
    let session = Session::builder().max_states(150_000).build();
    for n in [2, 3] {
        let bad = session.run_scenario(&dining::dining_philosophers(n, true));
        let good = session.run_scenario(&dining::dining_philosophers(n, false));
        assert!(bad.first_error().is_none() && good.first_error().is_none());
        assert!(
            !bad.verdicts()[0],
            "{n} philosophers grabbing left-first can deadlock"
        );
        assert!(
            good.verdicts()[0],
            "{n} philosophers with one left-handed cannot deadlock"
        );
    }
}

/// Ring scenarios: deadlock-free for one or several tokens, and the state
/// space grows monotonically in both ring size and token count.
#[test]
fn ring_scenarios_verify_and_scale() {
    let session = Session::builder().max_states(100_000).build();
    let mut last_states = 0;
    for (members, tokens) in [(3, 1), (4, 1), (4, 2)] {
        let scenario = ring::token_ring(members, tokens);
        let report = session.run_scenario(&scenario);
        assert!(
            report.first_error().is_none(),
            "ring({members},{tokens}) verification"
        );
        assert!(
            report.verdicts()[0],
            "ring({members},{tokens}) deadlock-free"
        );
        assert!(report.states() >= last_states);
        last_states = report.states();
    }
}

/// The two Effpi schedulers and the thread baseline agree on the Savina
/// workloads' observable results (the built-in validations), at small sizes.
#[test]
fn schedulers_agree_on_savina_results() {
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(EffpiRuntime::with_workers(Policy::Default, 4)),
        Box::new(EffpiRuntime::with_workers(Policy::ChannelFsm, 4)),
        Box::new(ThreadRuntime::with_small_stacks()),
    ];
    for s in &schedulers {
        runtime::savina::counting(300)
            .run_on(s.as_ref())
            .expect("counting");
        runtime::savina::ring(8, 64)
            .run_on(s.as_ref())
            .expect("ring");
        runtime::savina::ping_pong(8, 8)
            .run_on(s.as_ref())
            .expect("ping-pong");
    }
}

/// Negative end-to-end test: a protocol that is well-typed but violates a
/// liveness property is flagged by verification, not by typing.
#[test]
fn typing_alone_does_not_catch_liveness_violations() {
    // The §1 auditor that handles only one audit: In[Audit, (a) => End].
    let one_shot_auditor = lambdapi::Type::inp(
        lambdapi::Type::var("aud"),
        lambdapi::Type::pi("a", lambdapi::Type::Unit, lambdapi::Type::Nil),
    );
    let env = effpi::TypeEnv::new().bind("aud", lambdapi::Type::chan_io(lambdapi::Type::Unit));
    let session = Session::new();
    // It is a perfectly valid behavioural type...
    session
        .checker()
        .check_pi_type(&env, &one_shot_auditor)
        .expect("valid π-type");
    // ...but it is not reactive on its mailbox: after one audit it stops.
    let outcome = session
        .verify(&env, &one_shot_auditor, &Property::reactive("aud"))
        .unwrap();
    assert!(!outcome.holds);
}

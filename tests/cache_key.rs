//! Cache-key stability: the contract of `effpi::fingerprint`.
//!
//! Two halves, both load-bearing for the `effpi-serve` verdict cache:
//!
//! * **collapse** — normalisation-equivalent spellings of one request (alias
//!   renaming, union re-ordering, whitespace/comment/line-break changes,
//!   environment statement order) must produce *identical* keys, and when
//!   they do, their reports must actually agree (the soundness side);
//! * **separate** — anything that can change a report (properties, bounds,
//!   visibility, terms, engine config) must produce *distinct* keys.

use effpi::spec::parse_spec;
use effpi::{CacheKey, Session};

fn key_of(spec_text: &str) -> CacheKey {
    session().cache_key(&parse_spec(spec_text).expect("spec parses"))
}

fn session() -> Session {
    Session::builder().max_states(50_000).build()
}

/// Asserts two spellings collapse to one key AND that the collapse is sound:
/// running both yields byte-identical stable lines.
fn assert_same_key_and_report(a: &str, b: &str) {
    assert_eq!(key_of(a), key_of(b), "expected one key:\n--\n{a}\n--\n{b}");
    let session = session();
    let run = |text: &str| {
        session
            .run_spec_text(text)
            .expect("spec runs")
            .summary()
            .stable_line()
    };
    assert_eq!(run(a), run(b), "equal keys must mean equal reports");
}

const BASE: &str = "\
    env self   : cio[int]\n\
    env aud    : co[int]\n\
    env client : co[str | ()]\n\
    type rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                      | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n\
    check non_usage [self]\n\
    check deadlock_free [self, aud, client]\n";

#[test]
fn alias_renaming_is_invisible() {
    let with_reply = "\
        def Reply = str | ()\n\
        env self   : cio[int]\n\
        env aud    : co[int]\n\
        env client : co[Reply]\n\
        type rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                          | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n\
        check non_usage [self]\n\
        check deadlock_free [self, aud, client]\n";
    // Same alias under another name…
    let renamed = with_reply.replace("Reply", "R");
    assert_same_key_and_report(with_reply, &renamed);
    // …and no alias at all.
    assert_same_key_and_report(with_reply, BASE);
}

#[test]
fn unused_definitions_are_invisible() {
    let with_unused = format!("def Dead = p[nil, nil]\n{BASE}");
    assert_same_key_and_report(&with_unused, BASE);
}

#[test]
fn union_reordering_is_invisible() {
    let reordered = BASE.replace("co[str | ()]", "co[() | str]");
    assert_ne!(BASE, reordered);
    assert_same_key_and_report(BASE, &reordered);
}

#[test]
fn whitespace_comments_and_line_breaking_are_invisible() {
    let noisy = "\
        // The Fig. 1 payment service.\n\
        env self   : cio[int]\n\
        # another comment style\n\
        env aud : co[int]\n\
        env client :\n\
            co[str | ()]\n\
        \n\
        type rec t .\n\
            i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                 | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n\
        check non_usage [self]\n\
        check deadlock_free [self,aud,  client]\n";
    assert_same_key_and_report(BASE, noisy);
}

#[test]
fn environment_statement_order_is_invisible() {
    // Γ is a map: declaring aud before self is the same environment. The
    // default visible list changes order too — visibility is a set, so the
    // key (and the model) are unchanged.
    let swapped = "\
        env aud    : co[int]\n\
        env self   : cio[int]\n\
        env client : co[str | ()]\n\
        type rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                          | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n\
        check non_usage [self]\n\
        check deadlock_free [self, aud, client]\n";
    assert_same_key_and_report(BASE, swapped);
}

#[test]
fn parallel_nil_units_are_invisible() {
    let padded = BASE.replace("type rec t . i[self,", "type p[nil, rec t . i[self,");
    let padded = padded.replace("o[client, (), Pi() t]] )]", "o[client, (), Pi() t]] )]]");
    assert_same_key_and_report(BASE, &padded);
}

// ---------------------------------------------------------------------------
// The separating half: distinct requests must get distinct keys.
// ---------------------------------------------------------------------------

#[test]
fn distinct_properties_do_not_collide() {
    let dropped = BASE.replace("check deadlock_free [self, aud, client]\n", "");
    assert_ne!(key_of(BASE), key_of(&dropped));

    let different = BASE.replace(
        "check deadlock_free [self, aud, client]",
        "check forwarding self -> aud",
    );
    assert_ne!(key_of(BASE), key_of(&different));

    // Probing different channels is a different property.
    let other_probe = BASE.replace("check non_usage [self]", "check non_usage [aud]");
    assert_ne!(key_of(BASE), key_of(&other_probe));

    // Check order is part of the key: reports list properties in order.
    let swapped = "\
        env self   : cio[int]\n\
        env aud    : co[int]\n\
        env client : co[str | ()]\n\
        type rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                          | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n\
        check deadlock_free [self, aud, client]\n\
        check non_usage [self]\n";
    assert_ne!(key_of(BASE), key_of(swapped));
}

#[test]
fn distinct_types_environments_and_visibility_do_not_collide() {
    let other_type = BASE.replace("o[client, str, Pi() t]", "o[client, (), Pi() t]");
    assert_ne!(key_of(BASE), key_of(&other_type));

    let other_env = BASE.replace("env aud    : co[int]", "env aud    : cio[int]");
    assert_ne!(key_of(BASE), key_of(&other_env));

    let restricted = format!("{BASE}visible self, aud\n");
    assert_ne!(key_of(BASE), key_of(&restricted));
}

#[test]
fn terms_are_part_of_the_key() {
    let untyped = "\
        env unused : cio[int]\n\
        type Pi(c: cio[int]) o[c, int, Pi() nil]\n";
    let with_term = format!("{untyped}term fun c: cio[int]. send(c, 42, fun _: (). end)\n");
    let with_other_term = format!("{untyped}term fun c: cio[int]. end\n");
    assert_ne!(key_of(untyped), key_of(&with_term));
    assert_ne!(key_of(&with_term), key_of(&with_other_term));
}

#[test]
fn engine_configuration_separates_keys_except_parallelism() {
    let spec = parse_spec(BASE).unwrap();
    let base = Session::builder().max_states(50_000).build();
    let key = base.cache_key(&spec);

    let tighter = Session::builder().max_states(49_999).build();
    assert_ne!(key, tighter.cache_key(&spec));

    let shallower = Session::builder().max_states(50_000).max_depth(7).build();
    assert_ne!(key, shallower.cache_key(&spec));

    let less_unfold = Session::builder().max_states(50_000).max_unfold(1).build();
    assert_ne!(key, less_unfold.cache_key(&spec));

    let unprobed = Session::builder()
        .max_states(50_000)
        .auto_probe(false)
        .build();
    assert_ne!(key, unprobed.cache_key(&spec));

    // Worker count never separates: reports are identical by the engine's
    // determinism guarantee, so a parallel verdict may serve a serial ask.
    let parallel = Session::builder().max_states(50_000).parallelism(8).build();
    assert_eq!(key, parallel.cache_key(&spec));

    // The session's own visible default is irrelevant to spec runs (the
    // spec's list governs), and must therefore not separate keys.
    let other_visible = Session::builder()
        .max_states(50_000)
        .visible(["unrelated"])
        .build();
    assert_eq!(key, other_visible.cache_key(&spec));

    // A cancellation token is a run-control knob, not request content: it
    // cannot change a *completed* report and must not separate keys.
    let with_token = Session::builder()
        .max_states(50_000)
        .cancel_token(effpi::CancelToken::new())
        .build();
    assert_eq!(key, with_token.cache_key(&spec));
}

// ---------------------------------------------------------------------------
// Cross-release stability: pinned key values.
// ---------------------------------------------------------------------------

/// The keys below were recorded **before** type interning existed (plain
/// `Type::normalize` fed the canonical rendering). The hash-consed pipeline
/// must reproduce them bit-for-bit: a persisted verdict cache survives the
/// interning PR, and any future change to the rendering (or to
/// normalisation) that moves these values must bump
/// `effpi::fingerprint::KEY_SCHEMA` instead of silently replaying stale
/// verdicts.
#[test]
fn interning_preserves_recorded_cache_key_values() {
    assert_eq!(key_of(BASE).to_string(), "a71b421df1637717b4da4eb8048a6b7d");

    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let pinned = [
        ("payment.effpi", "5189152703e38c9fd20e197aabe643ae"),
        ("send_once.effpi", "0879304f3c447510ddf8de074fea9ae8"),
    ];
    for (file, expected) in pinned {
        let text = std::fs::read_to_string(format!("{specs_dir}/{file}"))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let key = Session::new().cache_key(&parse_spec(&text).expect("spec parses"));
        assert_eq!(key.to_string(), expected, "{file}: pinned key drifted");
    }
}

//! Fuzz-style hardening of the `.effpi` spec parser.
//!
//! `effpi-serve` feeds [`effpi::spec::parse_spec`] **untrusted bytes** from
//! the network, so the parser's contract tightens from "rejects bad specs"
//! to "*returns* an error on every bad input — never panics, never hangs".
//! These tests drive it with the repository's deterministic generator
//! harness (the offline stand-in for proptest, as in
//! `type_safety_props.rs`): every case comes from a fixed seed, so a failure
//! reproduces exactly.
//!
//! Three attack surfaces:
//!
//! * **truncation** — every prefix of valid specs (byte-level, at char
//!   boundaries), the shape a half-written request or a dropped connection
//!   produces;
//! * **mutation** — valid specs with randomly spliced hostile fragments
//!   (brackets, arrows, keywords, NULs, multi-byte unicode);
//! * **synthesis** — statements assembled from a hostile alphabet with no
//!   valid skeleton at all, plus a catalogue of hand-picked nasties
//!   (deep nesting, unterminated lists, keyword-only lines).

use effpi::spec::parse_spec;

/// SplitMix64 — same deterministic PRNG as `type_safety_props.rs`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Valid seed specs, including every statement kind the grammar has.
const SEEDS: [&str; 4] = [
    "// The Fig. 1 payment service.\n\
     env self   : cio[int]\n\
     env aud    : co[int]\n\
     env client : co[str | ()]\n\
     type rec t . i[self, Pi(pay: int) ( o[client, str, Pi() t]\n\
                                       | o[aud, pay, Pi() o[client, (), Pi() t]] )]\n\
     check non_usage [self]\n\
     check deadlock_free [self, aud, client]\n\
     check forwarding self -> aud\n",
    "def Token = ()\n\
     env a : cio[Token]\n\
     env b : cio[Token]\n\
     visible a\n\
     type p[ rec r . i[a, Pi(t: Token) o[b, Token, Pi() r]],\n\
             rec s . i[b, Pi(t: Token) o[a, Token, Pi() s]] ]\n\
     check deadlock_free []\n",
    "env unused : cio[int]\n\
     type Pi(c: cio[int]) o[c, int, Pi() nil]\n\
     term fun c: cio[int]. send(c, 42, fun _: (). end)\n",
    "env z : cio[co[str]]\n\
     type rec t . i[z, Pi(reply: co[str]) o[reply, str, Pi() t]]\n\
     check reactive z\n\
     check responsive z\n",
];

/// Fragments chosen to stress every delimiter, keyword and operator the
/// grammars (spec statements, types, terms, properties) react to.
const HOSTILE: [&str; 32] = [
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    ",",
    ":",
    ".",
    "|",
    "->",
    "=",
    "µ",
    "Π",
    "⊤",
    "⊥",
    "∨",
    "rec",
    "Pi",
    "fun",
    "send",
    "recv",
    "end",
    "nil",
    "proc",
    "def",
    "env",
    "type",
    "check",
    "\u{0}",
    "\u{1f600}",
    "\t\t",
];

/// The parser must decide (Ok or Err) without panicking; both outcomes are
/// legal for generated input. The returned flag feeds sanity counters.
fn parses(input: &str) -> bool {
    parse_spec(input).is_ok()
}

#[test]
fn every_truncation_of_every_seed_is_decided_without_panicking() {
    for (i, seed) in SEEDS.iter().enumerate() {
        assert!(parses(seed), "seed {i} must be a valid spec");
        for cut in 0..=seed.len() {
            if !seed.is_char_boundary(cut) {
                continue;
            }
            // Both the bare prefix and the prefix of a line that lost its
            // tail mid-statement.
            let prefix = &seed[..cut];
            let _ = parse_spec(prefix);
            let _ = parse_spec(prefix.trim_end());
        }
    }
}

#[test]
fn spliced_mutations_of_valid_specs_are_decided_without_panicking() {
    let mut decided_ok = 0u32;
    let mut decided_err = 0u32;
    for seed_no in 0..SEEDS.len() as u64 {
        for case in 0..256u64 {
            let mut rng = Rng::new(seed_no * 10_000 + case);
            let base = SEEDS[seed_no as usize];
            let mut mutated = String::with_capacity(base.len() + 16);
            // Splice 1–4 hostile fragments at random char boundaries,
            // sometimes replacing a slice instead of inserting.
            let cuts = 1 + rng.below(4);
            let boundaries: Vec<usize> = (0..=base.len())
                .filter(|&i| base.is_char_boundary(i))
                .collect();
            let mut points: Vec<usize> = (0..cuts)
                .map(|_| boundaries[rng.below(boundaries.len() as u64) as usize])
                .collect();
            points.sort_unstable();
            points.dedup();
            let mut last = 0;
            for point in points {
                if point < last {
                    continue; // a previous deletion already consumed this cut
                }
                mutated.push_str(&base[last..point]);
                mutated.push_str(HOSTILE[rng.below(HOSTILE.len() as u64) as usize]);
                // Occasionally also skip ahead, deleting a chunk.
                last = if rng.below(3) == 0 {
                    let skip_to = boundaries
                        .iter()
                        .copied()
                        .find(|&b| b >= point + 1 + rng.below(8) as usize)
                        .unwrap_or(base.len());
                    skip_to
                } else {
                    point
                };
            }
            mutated.push_str(&base[last..]);
            if parses(&mutated) {
                decided_ok += 1;
            } else {
                decided_err += 1;
            }
        }
    }
    // Sanity: the mutator actually produces both outcomes, i.e. it is
    // neither so destructive that nothing parses nor so timid that
    // everything does.
    assert!(decided_ok > 0, "no mutation survived parsing");
    assert!(decided_err > 0, "no mutation was rejected");
}

#[test]
fn synthesised_keyword_soup_is_decided_without_panicking() {
    for case in 0..512u64 {
        let mut rng = Rng::new(0xeff1 + case);
        let mut soup = String::new();
        for _ in 0..1 + rng.below(12) {
            for _ in 0..rng.below(10) {
                soup.push_str(HOSTILE[rng.below(HOSTILE.len() as u64) as usize]);
                if rng.below(3) == 0 {
                    soup.push(' ');
                }
            }
            soup.push('\n');
        }
        let _ = parse_spec(&soup);
    }
}

#[test]
fn hand_picked_nasties_return_errors_not_panics() {
    let deep_open = format!("type {}nil", "p[".repeat(2_000));
    let deep_closed = format!("type {}nil{}", "p[nil, ".repeat(512), "]".repeat(512));
    let long_union = format!("type {}nil", "nil | ".repeat(4_096));
    let nasties: Vec<String> = [
        "",
        "   \n\t\n",
        "env",
        "env :",
        "env x :",
        "env : cio[int]",
        "def",
        "def =",
        "def X =",
        "visible",
        "visible ,,,",
        "type",
        "term",
        "check",
        "check forwarding",
        "check forwarding ->",
        "check forwarding x ->",
        "check non_usage [",
        "check non_usage x]",
        "check deadlock_free [x",
        "check responsive",
        "type rec",
        "type rec t",
        "type rec t .",
        "type i[",
        "type o[x, int",
        "type Pi(",
        "type Pi(x:",
        "type cio[cio[cio[",
        "term fun",
        "term send(",
        "env x : cio[int]\ntype \u{0}\u{0}\u{0}",
        "env x\u{a0}y : cio[int]", // non-breaking space inside a name
    ]
    .into_iter()
    .map(String::from)
    .chain([deep_open, deep_closed, long_union])
    .collect();
    for nasty in &nasties {
        // The contract under test is "decided, never panicked" — a few
        // nasties are legal, most are errors (the 512-deep closed nest is
        // well-bracketed but still rejected by the parser's MAX_NESTING
        // guard); either way the call must return.
        let _ = parse_spec(nasty);
    }
    // Pin the polarity of a few: statements cut off mid-shape must be
    // *errors* (with their line number), not silent successes…
    for must_reject in [
        "env x :",
        "def X =",
        "check forwarding x ->",
        "type rec t .",
    ] {
        let err = parse_spec(must_reject).expect_err(must_reject);
        assert_eq!(err.line, 1, "{must_reject}");
    }
    // …while empty input is the empty spec — a request with no statements is
    // well-formed (and runs to an empty report).
    assert!(parse_spec("").is_ok());
    assert!(parse_spec("   \n\t\n").is_ok());
}

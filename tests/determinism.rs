//! The determinism suite of the parallel exploration engine.
//!
//! `lts::explore` guarantees that a complete parallel exploration is
//! renumbered into **exactly** the LTS the serial BFS would have produced, so
//! a `Session` must report byte-identical results whatever its `parallelism`.
//! This suite pins that guarantee at the outermost surface: for every
//! protocol scenario in `effpi::protocols` and every `.effpi` specification
//! shipped in `examples/specs/`, the stable summary line (every reported
//! field except wall-clock timing) of a serial run and a `parallelism = 4`
//! run must be byte-identical — and likewise, for every open-term
//! conformance scenario, the full rendered Fig. 5 LTS (states in canonical
//! numbering plus every transition triple) built through
//! `Session::build_term_lts`.
//!
//! The same contract covers the exploration memory layer (`lts::memory`):
//! the id-indexed bitmap seen-set vs the hash fallback, and the
//! disk-spilling frontier behind `memory_budget` vs the all-in-RAM one, are
//! operational choices that must be invisible in every report — see the
//! "memory layer" section at the bottom. (Corrupt or truncated spill
//! segments failing *loudly* is pinned at the unit level in `lts::memory`,
//! where a segment file can be torn byte by byte; `bench::big` is the
//! out-of-core-scale CI edition of the zero-drift clause.)

use effpi::protocols::{fig9_scenarios, mobile_code, open_terms};
use effpi::spec::parse_spec;
use effpi::{SeenSet, Session, SessionBuilder, Strategy, TermLabel, TermRef};
use lts::Lts;

const MAX_STATES: usize = 60_000;
const WORKERS: usize = 4;

fn session(parallelism: usize) -> Session {
    Session::builder()
        .max_states(MAX_STATES)
        .parallelism(parallelism)
        .build()
}

#[test]
fn every_protocol_scenario_reports_identically_serial_and_parallel() {
    let serial = session(1);
    let parallel = session(WORKERS);
    let mut scenarios = fig9_scenarios(0);
    scenarios.push(mobile_code::mobile_code_scenario());
    assert!(scenarios.len() >= 8);
    for scenario in &scenarios {
        let s = serial.run_scenario(scenario).summary().stable_line();
        let p = parallel.run_scenario(scenario).summary().stable_line();
        assert_eq!(
            s, p,
            "{}: serial and {WORKERS}-worker runs disagree",
            scenario.name
        );
    }
}

#[test]
fn every_shipped_spec_reports_identically_serial_and_parallel() {
    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let serial = session(1);
    let parallel = session(WORKERS);
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(specs_dir)
        .expect("examples/specs must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "effpi"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let s = serial.run_spec(&spec).summary().stable_line();
        let p = parallel.run_spec(&spec).summary().stable_line();
        assert_eq!(
            s,
            p,
            "{}: serial and {WORKERS}-worker runs disagree",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected the shipped specs, found {checked}");
}

#[test]
fn every_strategy_reports_identically_on_complete_runs() {
    // The canonical-renumbering contract extends to the frontier discipline:
    // a *complete* run visits the whole space whatever the visit order, and
    // renumbering into BFS discovery order erases the order again — so every
    // strategy, serial or parallel, must reproduce the serial BFS report
    // byte for byte. (Only bounded runs may differ per strategy, and those
    // say so in the report.)
    let strategies = [
        Strategy::Bfs,
        Strategy::Dfs,
        Strategy::Beam { width: 64 },
        Strategy::RandomWalk { seed: 7 },
    ];
    let baseline = session(1);
    let mut scenarios = fig9_scenarios(0);
    scenarios.push(mobile_code::mobile_code_scenario());
    for scenario in &scenarios {
        let expect = baseline.run_scenario(scenario).summary().stable_line();
        assert!(
            !expect.contains("error="),
            "{}: the strategy contract only covers complete runs",
            scenario.name
        );
        for strategy in strategies {
            for workers in [1, WORKERS] {
                let line = Session::builder()
                    .max_states(MAX_STATES)
                    .parallelism(workers)
                    .strategy(strategy)
                    .build()
                    .run_scenario(scenario)
                    .summary()
                    .stable_line();
                assert_eq!(
                    expect, line,
                    "{}: {strategy} x{workers} workers differs from serial BFS",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn truncated_runs_report_the_same_clamped_error_serial_and_parallel() {
    // A bound small enough that every payment scenario trips it: the clamped
    // `StateSpaceTooLarge { bound, explored }` must also be identical (the
    // overshoot clamp makes `explored == bound` on every engine).
    let tight_serial = Session::builder().max_states(50).parallelism(1).build();
    let tight_parallel = Session::builder()
        .max_states(50)
        .parallelism(WORKERS)
        .build();
    let scenario = &fig9_scenarios(0)[0];
    let s = tight_serial.run_scenario(scenario).summary().stable_line();
    let p = tight_parallel
        .run_scenario(scenario)
        .summary()
        .stable_line();
    assert!(s.contains("error="), "expected a bound trip, got {s}");
    assert_eq!(s, p);
}

/// Renders every timing-free fact of a term LTS — state list (in canonical
/// numbering), every transition triple — as one stable string, the term-side
/// analogue of `ReportSummary::stable_line`.
fn term_lts_stable_line(lts: &Lts<TermRef, TermLabel>) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "states={} transitions={} truncated={}",
        lts.num_states(),
        lts.num_transitions(),
        lts.is_truncated()
    );
    for (i, state) in lts.states().iter().enumerate() {
        let _ = write!(line, " s{i}={state}");
    }
    for (i, label, j) in lts.transitions() {
        let _ = write!(line, " t{i}-[{label}]->{j}");
    }
    line
}

#[test]
fn every_open_term_scenario_reports_identically_serial_and_parallel() {
    let serial = session(1);
    let parallel = session(WORKERS);
    // The corpus is shared with the `term_bench` CI gate
    // (`effpi::protocols::open_terms`): one source of truth, so the
    // determinism suite and the gated benchmark can never desynchronise.
    let scenarios = open_terms::corpus();
    assert!(scenarios.len() >= 5);
    for scenario in scenarios {
        let s = serial
            .build_term_lts(&scenario.env, &scenario.term)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let p = parallel
            .build_term_lts(&scenario.env, &scenario.term)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert_eq!(
            term_lts_stable_line(&s),
            term_lts_stable_line(&p),
            "{}: serial and {WORKERS}-worker open-term runs disagree",
            scenario.name
        );
    }
}

// ---------------------------------------------------------------------------
// The memory layer: seen-set representation and the exploration memory
// budget are operational knobs, never observable in a report.
// ---------------------------------------------------------------------------

/// One scenario per protocol family — enough shape diversity to exercise
/// both memory-layer representations, small enough that the knob matrix
/// below stays test-suite-fast in debug builds.
fn memory_corpus() -> Vec<effpi::Scenario> {
    use effpi::protocols::{dining, payment, pingpong, ring};
    vec![
        payment::payment_with_clients(3),
        dining::dining_philosophers(3, false),
        pingpong::ping_pong_pairs(3, true),
        ring::token_ring(4, 2),
    ]
}

/// Runs the memory corpus on a session built by `configure` and returns the
/// stable summary lines.
fn memory_corpus_lines(configure: impl Fn(SessionBuilder) -> SessionBuilder) -> Vec<String> {
    let session = configure(Session::builder().max_states(MAX_STATES)).build();
    memory_corpus()
        .iter()
        .map(|scenario| {
            let summary = session.run_scenario(scenario).summary();
            assert!(
                summary.error.is_none(),
                "{}: {:?}",
                scenario.name,
                summary.error
            );
            summary.stable_line()
        })
        .collect()
}

#[test]
fn the_bitmap_seen_set_is_byte_identical_to_the_hash_engine() {
    // `SeenSet::Bitmap` (the default: two-level lazily-paged bit array over
    // canonical state ids) and `SeenSet::Hash` (the prior engine, kept as
    // the fallback) must agree byte for byte, serially and with 4 workers.
    for workers in [1, WORKERS] {
        let bitmap = memory_corpus_lines(|b| b.seen_set(SeenSet::Bitmap).parallelism(workers));
        let hash = memory_corpus_lines(|b| b.seen_set(SeenSet::Hash).parallelism(workers));
        assert_eq!(
            bitmap, hash,
            "seen-set representation leaked into a {workers}-worker report"
        );
    }
}

#[test]
fn a_memory_budget_is_byte_identical_to_an_unbudgeted_run() {
    // A 1-byte budget trips on the first expansion, so every budgeted run
    // takes the spilling-frontier code path from its first push; the report
    // must not move an inch, serially or with 4 workers.
    let unbudgeted = memory_corpus_lines(|b| b);
    for workers in [1, WORKERS] {
        let budgeted = memory_corpus_lines(|b| b.memory_budget(1).parallelism(workers));
        assert_eq!(
            unbudgeted, budgeted,
            "the memory budget leaked into a {workers}-worker report"
        );
    }
}

#[test]
fn hash_fallback_budget_and_parallelism_compose_without_drift() {
    // The knob matrix pairwise-agrees above; pin one fully-combined corner.
    let baseline = memory_corpus_lines(|b| b);
    let everything = memory_corpus_lines(|b| {
        b.seen_set(SeenSet::Hash)
            .memory_budget(1)
            .parallelism(WORKERS)
    });
    assert_eq!(baseline, everything);
}

#[test]
fn spill_directories_are_cleaned_up_after_every_run() {
    let dir = std::env::temp_dir().join(format!("effpi-determinism-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spill base dir");

    let with_spill_dir = memory_corpus_lines(|b| b.memory_budget(1).spill_dir(dir.clone()));
    assert_eq!(with_spill_dir, memory_corpus_lines(|b| b));

    // Whatever the runs spilled under `dir` was transient: the per-run
    // subdirectories remove themselves when the exploration finishes.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("spill base dir survives")
        .map(|e| e.expect("read dir entry").file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "spill run directories leaked: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stable_lines_carry_everything_but_the_timing() {
    let report = session(1).run_scenario(&fig9_scenarios(0)[0]);
    let summary = report.summary();
    let stable = summary.stable_line();
    assert!(stable.contains("states="));
    assert!(stable.contains("verdicts="));
    assert!(!stable.contains("duration"), "{stable}");
    // The full Display adds the duration back.
    assert!(summary.to_string().contains("duration_ms="));
}

//! The determinism suite of the parallel exploration engine.
//!
//! `lts::explore` guarantees that a complete parallel exploration is
//! renumbered into **exactly** the LTS the serial BFS would have produced, so
//! a `Session` must report byte-identical results whatever its `parallelism`.
//! This suite pins that guarantee at the outermost surface: for every
//! protocol scenario in `effpi::protocols` and every `.effpi` specification
//! shipped in `examples/specs/`, the stable summary line (every reported
//! field except wall-clock timing) of a serial run and a `parallelism = 4`
//! run must be byte-identical — and likewise, for every open-term
//! conformance scenario, the full rendered Fig. 5 LTS (states in canonical
//! numbering plus every transition triple) built through
//! `Session::build_term_lts`.

use effpi::protocols::{fig9_scenarios, mobile_code, open_terms};
use effpi::spec::parse_spec;
use effpi::{Session, Strategy, TermLabel, TermRef};
use lts::Lts;

const MAX_STATES: usize = 60_000;
const WORKERS: usize = 4;

fn session(parallelism: usize) -> Session {
    Session::builder()
        .max_states(MAX_STATES)
        .parallelism(parallelism)
        .build()
}

#[test]
fn every_protocol_scenario_reports_identically_serial_and_parallel() {
    let serial = session(1);
    let parallel = session(WORKERS);
    let mut scenarios = fig9_scenarios(0);
    scenarios.push(mobile_code::mobile_code_scenario());
    assert!(scenarios.len() >= 8);
    for scenario in &scenarios {
        let s = serial.run_scenario(scenario).summary().stable_line();
        let p = parallel.run_scenario(scenario).summary().stable_line();
        assert_eq!(
            s, p,
            "{}: serial and {WORKERS}-worker runs disagree",
            scenario.name
        );
    }
}

#[test]
fn every_shipped_spec_reports_identically_serial_and_parallel() {
    let specs_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let serial = session(1);
    let parallel = session(WORKERS);
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(specs_dir)
        .expect("examples/specs must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "effpi"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable spec");
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let s = serial.run_spec(&spec).summary().stable_line();
        let p = parallel.run_spec(&spec).summary().stable_line();
        assert_eq!(
            s,
            p,
            "{}: serial and {WORKERS}-worker runs disagree",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 2, "expected the shipped specs, found {checked}");
}

#[test]
fn every_strategy_reports_identically_on_complete_runs() {
    // The canonical-renumbering contract extends to the frontier discipline:
    // a *complete* run visits the whole space whatever the visit order, and
    // renumbering into BFS discovery order erases the order again — so every
    // strategy, serial or parallel, must reproduce the serial BFS report
    // byte for byte. (Only bounded runs may differ per strategy, and those
    // say so in the report.)
    let strategies = [
        Strategy::Bfs,
        Strategy::Dfs,
        Strategy::Beam { width: 64 },
        Strategy::RandomWalk { seed: 7 },
    ];
    let baseline = session(1);
    let mut scenarios = fig9_scenarios(0);
    scenarios.push(mobile_code::mobile_code_scenario());
    for scenario in &scenarios {
        let expect = baseline.run_scenario(scenario).summary().stable_line();
        assert!(
            !expect.contains("error="),
            "{}: the strategy contract only covers complete runs",
            scenario.name
        );
        for strategy in strategies {
            for workers in [1, WORKERS] {
                let line = Session::builder()
                    .max_states(MAX_STATES)
                    .parallelism(workers)
                    .strategy(strategy)
                    .build()
                    .run_scenario(scenario)
                    .summary()
                    .stable_line();
                assert_eq!(
                    expect, line,
                    "{}: {strategy} x{workers} workers differs from serial BFS",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn truncated_runs_report_the_same_clamped_error_serial_and_parallel() {
    // A bound small enough that every payment scenario trips it: the clamped
    // `StateSpaceTooLarge { bound, explored }` must also be identical (the
    // overshoot clamp makes `explored == bound` on every engine).
    let tight_serial = Session::builder().max_states(50).parallelism(1).build();
    let tight_parallel = Session::builder()
        .max_states(50)
        .parallelism(WORKERS)
        .build();
    let scenario = &fig9_scenarios(0)[0];
    let s = tight_serial.run_scenario(scenario).summary().stable_line();
    let p = tight_parallel
        .run_scenario(scenario)
        .summary()
        .stable_line();
    assert!(s.contains("error="), "expected a bound trip, got {s}");
    assert_eq!(s, p);
}

/// Renders every timing-free fact of a term LTS — state list (in canonical
/// numbering), every transition triple — as one stable string, the term-side
/// analogue of `ReportSummary::stable_line`.
fn term_lts_stable_line(lts: &Lts<TermRef, TermLabel>) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "states={} transitions={} truncated={}",
        lts.num_states(),
        lts.num_transitions(),
        lts.is_truncated()
    );
    for (i, state) in lts.states().iter().enumerate() {
        let _ = write!(line, " s{i}={state}");
    }
    for (i, label, j) in lts.transitions() {
        let _ = write!(line, " t{i}-[{label}]->{j}");
    }
    line
}

#[test]
fn every_open_term_scenario_reports_identically_serial_and_parallel() {
    let serial = session(1);
    let parallel = session(WORKERS);
    // The corpus is shared with the `term_bench` CI gate
    // (`effpi::protocols::open_terms`): one source of truth, so the
    // determinism suite and the gated benchmark can never desynchronise.
    let scenarios = open_terms::corpus();
    assert!(scenarios.len() >= 5);
    for scenario in scenarios {
        let s = serial
            .build_term_lts(&scenario.env, &scenario.term)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        let p = parallel
            .build_term_lts(&scenario.env, &scenario.term)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert_eq!(
            term_lts_stable_line(&s),
            term_lts_stable_line(&p),
            "{}: serial and {WORKERS}-worker open-term runs disagree",
            scenario.name
        );
    }
}

#[test]
fn stable_lines_carry_everything_but_the_timing() {
    let report = session(1).run_scenario(&fig9_scenarios(0)[0]);
    let summary = report.summary();
    let stable = summary.stable_line();
    assert!(stable.contains("states="));
    assert!(stable.contains("verdicts="));
    assert!(!stable.contains("duration"), "{stable}");
    // The full Display adds the duration back.
    assert!(summary.to_string().contains("duration_ms="));
}
